"""Tests for campaign sharding, streaming aggregation, and the CLI."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.drone import Difficulty, generate_scenario
from repro.fleet import (
    CampaignSpec,
    FleetAggregator,
    ReservoirSamples,
    run_campaign,
    shard_indices,
)
from repro.hil import ScenarioResult

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))


class TestSharding:
    def test_partition_covers_every_index_once(self):
        for count, shards in [(10, 3), (4, 4), (7, 1), (3, 8)]:
            parts = shard_indices(count, shards)
            flat = sorted(i for part in parts for i in part)
            assert flat == list(range(count))
            assert len(parts) <= shards
            assert all(parts)

    def test_round_robin_interleaving(self):
        assert shard_indices(7, 2) == [[0, 2, 4, 6], [1, 3, 5]]

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_indices(4, 0)

    def test_sharded_campaign_matches_in_process(self):
        spec = CampaignSpec(difficulties=("easy",), seeds=(0, 1, 2, 3),
                            frequencies_mhz=(100.0, 250.0))
        in_process = run_campaign(spec, workers=1)
        sharded = run_campaign(spec, workers=2)
        assert len(sharded.results) == len(in_process.results) == 8
        assert sharded.workers == 2
        for a, b in zip(in_process.results, sharded.results):
            # Shards change batch widths, so floats carry different GEMM
            # round-off; discrete outcomes must agree exactly.
            assert a.success == b.success
            assert a.crashed == b.crashed
            assert a.solve_iterations == b.solve_iterations
            assert a.flight_time_s == b.flight_time_s
            assert b.final_distance == pytest.approx(a.final_distance,
                                                     rel=1e-6, abs=1e-9)
        assert sharded.stats.episodes == 8

    def test_sharded_campaign_is_reproducible(self):
        spec = CampaignSpec(difficulties=("easy",), seeds=(0, 1),
                            frequencies_mhz=(100.0, 250.0))
        first = run_campaign(spec, workers=2)
        second = run_campaign(spec, workers=2)
        for a, b in zip(first.results, second.results):
            assert a.final_distance == b.final_distance
            assert a.solve_iterations == b.solve_iterations

    def test_memory_bounded_mode_matches_full_mode(self):
        """keep_results=False aggregates in-shard and drops episode results."""
        spec = CampaignSpec(difficulties=("easy",), seeds=(0, 1),
                            frequencies_mhz=(100.0, 250.0))
        full = run_campaign(spec, workers=1)
        bounded = run_campaign(spec, workers=1, keep_results=False)
        assert bounded.results == []
        assert bounded.rows() == full.rows()
        assert bounded.overall()["episodes"] == 4

    def test_memory_bounded_mode_sharded(self):
        spec = CampaignSpec(difficulties=("easy",), seeds=(0, 1),
                            frequencies_mhz=(100.0, 250.0))
        bounded = run_campaign(spec, workers=2, keep_results=False)
        assert bounded.results == []
        rows = bounded.rows()
        assert sum(row["episodes"] for row in rows) == 4
        assert all(row["success_rate"] == 1.0 for row in rows)

    def test_empty_campaign(self):
        outcome = run_campaign([])
        assert outcome.results == [] and outcome.rows() == []


class TestReservoirSamples:
    def test_exact_below_cap(self):
        samples = ReservoirSamples(cap=64)
        values = list(np.linspace(0.0, 1.0, 50))
        samples.extend(values)
        assert samples.values == values
        assert samples.percentile(50.0) == pytest.approx(np.percentile(values, 50))

    def test_bounded_and_deterministic_above_cap(self):
        values = np.random.default_rng(0).uniform(size=5000)
        a = ReservoirSamples(cap=256)
        b = ReservoirSamples(cap=256)
        for value in values:
            a.add(value)
            b.add(value)
        assert len(a.values) <= 256
        assert a.values == b.values
        assert a.count == 5000
        # Decimated percentiles stay close to the exact ones.
        assert a.percentile(50.0) == pytest.approx(
            np.percentile(values, 50.0), abs=0.1)

    def test_merge_aligns_strides(self):
        small = ReservoirSamples(cap=1024)
        small.extend([1.0, 2.0, 3.0])
        big = ReservoirSamples(cap=32)
        big.extend(np.arange(200.0))
        merged = ReservoirSamples(cap=32)
        merged.extend(np.arange(200.0))
        merged.merge(small)
        assert merged.count == 203
        assert len(merged.values) <= 32

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            ReservoirSamples(cap=1)


def _result(difficulty=Difficulty.EASY, success=True, distance=0.1,
            power=2.0, solve_times=(1e-3, 2e-3)):
    return ScenarioResult(
        scenario=generate_scenario(difficulty, 0),
        implementation="vector", frequency_mhz=100.0, success=success,
        crashed=not success, final_distance=distance,
        solve_times=list(solve_times), solve_iterations=[5] * len(solve_times),
        actuation_power_w=power, soc_power_w=0.05, flight_time_s=4.0)


class TestFleetAggregator:
    def test_streaming_stats_match_direct_computation(self):
        aggregator = FleetAggregator()
        distances = [0.05, 0.1, 0.4]
        for distance, success in zip(distances, (True, True, False)):
            aggregator.add(_result(distance=distance, success=success),
                           key=("easy", "vector", 100.0, "CrazyFlie", 100.0, 10))
        rows = aggregator.rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["episodes"] == 3
        assert row["success_rate"] == pytest.approx(2 / 3)
        assert row["crash_rate"] == pytest.approx(1 / 3)
        assert row["tracking_error_p50_m"] == pytest.approx(
            np.percentile(distances, 50))
        assert row["solve_time_p50_ms"] == pytest.approx(1.5)
        assert row["mean_iterations"] == pytest.approx(5.0)

    def test_cells_keyed_by_configuration(self):
        aggregator = FleetAggregator()
        aggregator.add(_result(), key=("easy", "vector", 100.0, "CrazyFlie", 100.0, 10))
        aggregator.add(_result(), key=("easy", "vector", 250.0, "CrazyFlie", 100.0, 10))
        assert len(aggregator.cells) == 2
        assert aggregator.episodes == 2
        overall = aggregator.overall()
        assert overall["cells"] == 2 and overall["episodes"] == 2

    def test_merge_equals_single_pass(self):
        key = ("easy", "vector", 100.0, "CrazyFlie", 100.0, 10)
        combined = FleetAggregator()
        left, right = FleetAggregator(), FleetAggregator()
        for index in range(10):
            result = _result(distance=0.01 * index, success=index % 3 != 0)
            combined.add(result, key=key)
            (left if index % 2 == 0 else right).add(result, key=key)
        left.merge(right)
        merged_row = left.rows()[0]
        combined_row = combined.rows()[0]
        assert merged_row["episodes"] == combined_row["episodes"]
        assert merged_row["success_rate"] == combined_row["success_rate"]
        assert merged_row["tracking_error_p50_m"] == pytest.approx(
            combined_row["tracking_error_p50_m"])

    def test_default_key_derived_from_result(self):
        aggregator = FleetAggregator()
        aggregator.add(_result())
        row = aggregator.rows()[0]
        assert row["difficulty"] == "easy"
        assert row["variant"] == "-"

    def test_rows_sorted_and_stable(self):
        aggregator = FleetAggregator()
        aggregator.add(_result(), key=("hard", "vector", 100.0, "CrazyFlie", 100.0, 10))
        aggregator.add(_result(), key=("easy", "vector", 100.0, "CrazyFlie", 100.0, 10))
        assert [row["difficulty"] for row in aggregator.rows()] == ["easy", "hard"]


class TestExperimentDriver:
    def test_fleet_campaign_rows(self):
        from repro.experiments import run_experiment

        rows = run_experiment("fleet_campaign", difficulties=("easy",),
                              seeds=2, frequencies_mhz=(100.0,))
        assert len(rows) == 2          # one cell + the overall summary
        assert rows[0]["episodes"] == 2
        assert rows[-1]["difficulty"] == "overall"

    def test_fleet_campaign_cached_via_runner(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner()
        kwargs = dict(difficulties=("easy",), seeds=1,
                      frequencies_mhz=(100.0,))
        first = runner.run("fleet_campaign", **kwargs)
        second = runner.run("fleet_campaign", **kwargs)
        assert runner.misses == 1 and runner.hits == 1
        assert first == second


class TestQuarantine:
    """Worker-failure paths: a failing episode must cost one structured
    row, not the campaign (pre-supervisor, one raising episode propagated
    through ``pool.map`` and lost every shard's work)."""

    SPEC = CampaignSpec(name="quarantine", difficulties=("easy",),
                        seeds=(0, 1, 2, 3), frequencies_mhz=(100.0, 250.0))

    def _poisoned(self, checkpoint_dir, monkeypatch, episode=2):
        from repro.fleet import RetryPolicy
        monkeypatch.setenv("REPRO_CHAOS",
                           json.dumps({"episode": episode, "mode": "raise"}))
        return run_campaign(self.SPEC, workers=2, checkpoint_dir=checkpoint_dir,
                            lease_size=4,
                            retry_policy=RetryPolicy(max_attempts=2,
                                                     backoff_base=0.02))

    def test_failure_row_emitted_and_siblings_survive(self, tmp_path,
                                                      monkeypatch):
        outcome = self._poisoned(str(tmp_path / "run"), monkeypatch)
        assert [f.index for f in outcome.failures] == [2]
        assert outcome.results[2] is None
        completed = [r for i, r in enumerate(outcome.results) if i != 2]
        assert all(r is not None for r in completed)
        rows = outcome.rows()
        quarantined = [row for row in rows
                       if row.get("status") == "quarantined"]
        assert len(quarantined) == 1
        assert quarantined[0]["index"] == 2
        assert quarantined[0]["error_type"] == "ChaosError"
        assert quarantined[0]["attempts"] == 2
        # Aggregate rows count only the episodes that actually completed.
        aggregate_rows = [row for row in rows if "status" not in row]
        assert sum(row["episodes"] for row in aggregate_rows) == 7
        assert outcome.overall()["quarantined_episodes"] == 1

    def test_quarantine_output_is_deterministic(self, tmp_path, monkeypatch):
        first = self._poisoned(str(tmp_path / "a"), monkeypatch)
        second = self._poisoned(str(tmp_path / "b"), monkeypatch)
        assert json.dumps(first.rows(), sort_keys=True, default=str) == \
            json.dumps(second.rows(), sort_keys=True, default=str)


class TestCampaignCLI:
    def test_smoke_run_writes_rows(self, tmp_path):
        output = tmp_path / "campaign.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        completed = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "scripts", "run_campaign.py"),
             "--difficulties", "easy", "--seeds", "2",
             "--frequencies", "100,250", "--workers", "2",
             "--output", str(output)],
            env=env, capture_output=True, text=True, timeout=600)
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(output.read_text())
        assert payload["rows"], "campaign produced no aggregate rows"
        assert payload["overall"]["episodes"] == 4
        assert "episodes/s" in completed.stdout
