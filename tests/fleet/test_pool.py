"""Tests for the solver workspace pool and preallocated slot export."""

import numpy as np
import pytest

from repro.drone import generate_scenario
from repro.fleet import (
    CampaignSpec,
    FleetScheduler,
    SolverPool,
    run_campaign,
    solver_pool,
)
from repro.fleet.campaign import EpisodeFactory
from repro.tinympc import (
    BatchTinyMPCSolver,
    SolverSettings,
    default_quadrotor_problem,
)
from repro.tinympc.workspace import WORKSPACE_BUFFERS


@pytest.fixture(scope="module")
def problem():
    return default_quadrotor_problem()


class TestSolverPool:
    def test_acquire_release_reuses_instance(self, problem):
        pool = SolverPool()
        settings = SolverSettings(max_iterations=10)
        first = pool.acquire(problem, settings, 8)
        pool.release(first)
        second = pool.acquire(problem, settings, 8)
        assert second is first
        assert pool.acquires == 2 and pool.hits == 1 and pool.idle_count == 0

    def test_idle_retention_is_bounded(self, problem):
        pool = SolverPool(max_idle_per_key=2)
        settings = SolverSettings(max_iterations=10)
        solvers = [pool.acquire(problem, settings, 4) for _ in range(5)]
        for solver in solvers:
            pool.release(solver)
        assert pool.idle_count == 2
        with pytest.raises(ValueError):
            SolverPool(max_idle_per_key=0)

    def test_key_separates_width_and_settings(self, problem):
        pool = SolverPool()
        settings = SolverSettings(max_iterations=10)
        solver = pool.acquire(problem, settings, 8)
        pool.release(solver)
        other_width = pool.acquire(problem, settings, 16)
        assert other_width is not solver
        other_settings = pool.acquire(
            problem, SolverSettings(max_iterations=20), 8)
        assert other_settings is not solver

    def test_released_solver_behaves_like_fresh(self, problem):
        """Pooled reuse must be numerically invisible: a reused solver's
        solve matches a brand-new solver's bit for bit."""
        pool = SolverPool()
        settings = SolverSettings(max_iterations=15)
        x0s = 0.2 * np.random.default_rng(5).standard_normal(
            (4, problem.state_dim))
        goal = np.zeros(problem.state_dim)

        dirty = pool.acquire(problem, settings, 4)
        dirty.solve(x0s, Xref=goal)          # leave warm-start state behind
        pool.release(dirty)
        reused = pool.acquire(problem, settings, 4)
        assert reused is dirty
        assert not reused._warm.any()
        for name in WORKSPACE_BUFFERS:
            assert not np.any(getattr(reused.workspace, name)), name

        fresh = BatchTinyMPCSolver(problem, 4, settings)
        reused_solution = reused.solve(x0s, Xref=goal)
        fresh_solution = fresh.solve(x0s, Xref=goal)
        np.testing.assert_array_equal(reused_solution.states,
                                      fresh_solution.states)
        np.testing.assert_array_equal(reused_solution.inputs,
                                      fresh_solution.inputs)
        np.testing.assert_array_equal(reused_solution.iterations,
                                      fresh_solution.iterations)


class TestExportSlotReuse:
    def test_export_into_previous_state_reuses_arrays(self, problem):
        solver = BatchTinyMPCSolver(problem, 2, SolverSettings(max_iterations=5))
        solver.solve(np.zeros((2, problem.state_dim)),
                     Xref=np.zeros(problem.state_dim))
        state = solver.export_slot(0)
        arrays_before = {name: id(state[name]) for name in WORKSPACE_BUFFERS}
        solver.solve(np.full((2, problem.state_dim), 0.1),
                     Xref=np.zeros(problem.state_dim))
        reexported = solver.export_slot(0, out=state)
        assert reexported is state
        for name in WORKSPACE_BUFFERS:
            assert id(reexported[name]) == arrays_before[name], name
            np.testing.assert_array_equal(reexported[name],
                                          getattr(solver.workspace, name)[0])

    def test_roundtrip_matches_fresh_export(self, problem):
        solver = BatchTinyMPCSolver(problem, 2, SolverSettings(max_iterations=5))
        solver.solve(np.full((2, problem.state_dim), 0.05),
                     Xref=np.zeros(problem.state_dim))
        fresh = solver.export_slot(1)
        recycled = solver.export_slot(1, out=solver.export_slot(1))
        for name in WORKSPACE_BUFFERS:
            np.testing.assert_array_equal(fresh[name], recycled[name])
        assert fresh["_warm"] == recycled["_warm"]


class TestSchedulerPooling:
    def _episodes(self, count=4):
        factory = EpisodeFactory()
        spec = CampaignSpec(name="pool", difficulties=("easy",),
                            seeds=tuple(range(count)))
        return [factory.build(episode, index)
                for index, episode in enumerate(spec.expand())]

    def test_scheduler_returns_solver_to_pool(self):
        pool = SolverPool()
        scheduler = FleetScheduler(self._episodes(), pool=pool)
        scheduler.run()
        assert pool.acquires == 1
        assert pool.idle_count == 1

    def test_second_run_hits_the_pool_and_matches(self):
        pool = SolverPool()
        first = FleetScheduler(self._episodes(), pool=pool).run()
        second = FleetScheduler(self._episodes(), pool=pool).run()
        assert pool.hits == 1
        for a, b in zip(first, second):
            assert a.success == b.success
            assert a.solve_iterations == b.solve_iterations
            assert a.flight_time_s == b.flight_time_s

    def test_global_pool_reused_across_campaigns(self):
        spec = CampaignSpec(name="pool-global", difficulties=("easy",),
                            seeds=(0, 1, 2))
        pool = solver_pool()
        baseline_hits = pool.hits
        first = run_campaign(spec)
        second = run_campaign(spec)
        assert pool.hits > baseline_hits
        for a, b in zip(first.results, second.results):
            assert a.success == b.success
            assert a.solve_iterations == b.solve_iterations
