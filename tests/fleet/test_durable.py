"""Unit tests for the durability layer: journal, run dirs, serialization."""

import json
import os

import numpy as np
import pytest

from repro.drone import Difficulty, generate_scenario
from repro.drone.disturbance import RecoveryResult, standard_disturbance_suite
from repro.fleet import CampaignSpec, EpisodeSpec, FleetAggregator
from repro.fleet.chaos import corrupt_journal
from repro.fleet.durable import (
    ChunkPlan,
    EpisodeFailure,
    ExecutionPlan,
    RUN_SCHEMA_VERSION,
    RunJournal,
    journal_path,
    plan_chunks,
    prepare_run,
    replay_journal,
    result_from_dict,
    result_to_dict,
    scan_journal,
    stats_from_dict,
    stats_to_dict,
)
from repro.fleet.scheduler import SchedulerStats
from repro.hil import ScenarioResult


def _scenario_result(seed=3, positions=True):
    scenario = generate_scenario(Difficulty.MEDIUM, seed)
    return ScenarioResult(
        scenario=scenario, implementation="vector", frequency_mhz=250.0,
        success=True, crashed=False, final_distance=0.07421398765432109,
        solve_times=[1.25e-3, 3.75e-4, 9.999999999e-4],
        solve_iterations=[7, 10, 3],
        actuation_power_w=2.125, soc_power_w=0.046875,
        flight_time_s=6.5,
        positions=(np.linspace(0.0, 1.0, 12).reshape(4, 3)
                   if positions else None))


class TestResultRoundTrip:
    def test_scenario_result_exact(self):
        result = _scenario_result()
        clone = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert clone.scenario == result.scenario
        assert clone.implementation == result.implementation
        assert clone.frequency_mhz == result.frequency_mhz
        assert clone.success is result.success
        assert clone.crashed is result.crashed
        # Bit-exact floats: JSON doubles round-trip through repr.
        assert clone.final_distance == result.final_distance
        assert clone.solve_times == result.solve_times
        assert clone.solve_iterations == result.solve_iterations
        np.testing.assert_array_equal(clone.positions, result.positions)

    def test_scenario_result_without_positions(self):
        clone = result_from_dict(result_to_dict(_scenario_result(positions=False)))
        assert clone.positions is None

    def test_recovery_result_exact(self):
        wrench = standard_disturbance_suite()[0]
        result = RecoveryResult(recovered=False, time_to_recovery=None,
                                max_deviation=float("inf"),
                                disturbance=wrench)
        clone = result_from_dict(result_to_dict(result))
        assert clone.recovered is False
        assert clone.time_to_recovery is None
        assert clone.max_deviation == float("inf")
        assert result_to_dict(clone) == result_to_dict(result)

    def test_stats_round_trip(self):
        stats = SchedulerStats(episodes=8, groups=2, dispatches=40,
                               solves=160, batched_solves=150,
                               scalar_solves=10, batch_widths=[4, 4, 8])
        clone = stats_from_dict(stats_to_dict(stats))
        assert clone == stats

    def test_aggregator_round_trip(self):
        aggregator = FleetAggregator(sample_cap=64)
        for seed in range(5):
            aggregator.add(_scenario_result(seed=seed, positions=False),
                           key=("medium", "vector", 250.0, "CrazyFlie",
                                100.0, 10))
        clone = FleetAggregator.from_dict(aggregator.to_dict())
        assert clone.rows() == aggregator.rows()
        assert clone.to_dict() == aggregator.to_dict()


class TestJournal:
    def _fill(self, path, n=10):
        journal = RunJournal(path, fsync_every=4)
        assert journal.open() == []
        for index in range(n):
            journal.append({"t": "episode", "c": "c0000", "i": index,
                            "r": {"value": index * 0.125}})
        journal.append({"t": "commit", "c": "c0000",
                        "i": list(range(n))}, sync=True)
        journal.close()

    def test_append_and_scan(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._fill(path)
        records, good_bytes, torn = scan_journal(path)
        assert len(records) == 11 and not torn
        assert good_bytes == os.path.getsize(path)

    @pytest.mark.parametrize("mode", ["truncate", "flip", "garbage"])
    def test_corruption_detected_and_tail_discarded(self, tmp_path, mode):
        path = str(tmp_path / "journal.jsonl")
        self._fill(path)
        corrupt_journal(path, mode)
        records, good_bytes, torn = scan_journal(path)
        assert torn
        # Damage inside the file loses the tail records; appended garbage
        # loses only itself.
        assert len(records) < 11 if mode in ("truncate", "flip") else \
            len(records) == 11
        # Every surviving record is intact and in order.
        assert [r["i"] for r in records if r["t"] == "episode"] == \
            list(range(len([r for r in records if r["t"] == "episode"])))
        # Re-opening truncates the tail and appending works again.
        journal = RunJournal(path)
        assert len(journal.open()) == len(records)
        journal.append({"t": "commit", "c": "c0001", "i": []}, sync=True)
        journal.close()
        rescanned, _, torn_after = scan_journal(path)
        assert not torn_after
        assert len(rescanned) == len(records) + 1

    def test_replay_promotes_only_committed_chunks(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path)
        journal.open()
        journal.append({"t": "episode", "c": "c0000", "i": 0, "r": {"v": 1}})
        journal.append({"t": "episode", "c": "c0000", "i": 1, "r": {"v": 2}})
        journal.append({"t": "commit", "c": "c0000", "i": [0, 1],
                        "s": stats_to_dict(SchedulerStats())})
        # Chunk c0001 never commits: its episode must not replay.
        journal.append({"t": "episode", "c": "c0001", "i": 2, "r": {"v": 3}})
        journal.close()
        records, _, _ = scan_journal(path)
        state = replay_journal(records)
        assert set(state.results) == {0, 1}
        assert state.committed == {"c0000": (0, 1)}
        assert state.completed_episodes == 2

    def test_replay_keeps_last_record_per_index(self, tmp_path):
        """A crash between append and commit leaves stale partial records;
        the re-run's records (appended later) win."""
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path)
        journal.open()
        journal.append({"t": "episode", "c": "c0000", "i": 0, "r": {"v": "stale"}})
        journal.append({"t": "episode", "c": "c0000", "i": 0, "r": {"v": "fresh"}})
        journal.append({"t": "episode", "c": "c0000", "i": 1, "r": {"v": "x"}})
        journal.append({"t": "commit", "c": "c0000", "i": [0, 1]})
        journal.close()
        state = replay_journal(scan_journal(path)[0])
        assert state.results[0] == {"v": "fresh"}

    def test_quarantine_failure_record_replays(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path)
        journal.open()
        failure = EpisodeFailure(index=4, label="easy/vector", stage="build",
                                 error_type="ChaosError", message="boom",
                                 attempts=3, chunk_id="c0001a")
        journal.append({"t": "fail", "c": "c0001a", "i": 4,
                        "f": failure.to_dict()})
        journal.append({"t": "commit", "c": "c0001a", "i": [4]})
        journal.close()
        state = replay_journal(scan_journal(path)[0])
        assert state.failures[4] == failure
        assert state.failures[4].as_row()["status"] == "quarantined"


class TestChunkPlanning:
    def test_chunks_cover_every_index_once(self):
        plan = ExecutionPlan(shards=3, lease_size=4)
        chunks = plan_chunks(29, plan)
        flat = sorted(i for chunk in chunks for i in chunk.indices)
        assert flat == list(range(29))
        assert all(len(chunk.indices) <= 4 for chunk in chunks)

    def test_chunk_ids_sort_in_plan_order(self):
        plan = ExecutionPlan(shards=2, lease_size=8)
        chunks = plan_chunks(64, plan)
        ids = [chunk.chunk_id for chunk in chunks]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_planning_is_deterministic(self):
        plan = ExecutionPlan(shards=4, lease_size=5)
        assert plan_chunks(50, plan) == plan_chunks(50, plan)

    def test_bisection_children_sort_inside_parent_slot(self):
        chunk = ChunkPlan("c0003", (3, 9, 15, 21), True)
        a, b = chunk.halves()
        assert a.indices == (3, 9) and b.indices == (15, 21)
        assert not a.batching and not b.batching
        assert "c0003" < a.chunk_id < b.chunk_id < "c0004"

    def test_plan_round_trip(self):
        plan = ExecutionPlan(shards=2, lease_size=16, batching=False,
                             max_batch=32, keep_results=False, sample_cap=128)
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan


class TestRunDirectory:
    def _spec(self):
        return CampaignSpec(difficulties=("easy",), seeds=(0, 1),
                            frequencies_mhz=(100.0,))

    def test_fresh_then_reattach(self, tmp_path):
        plan = ExecutionPlan(shards=2, lease_size=4)
        spec = self._spec()
        run_dir, meta, fresh = prepare_run(str(tmp_path), spec,
                                           spec.expand(), plan)
        assert fresh and os.path.exists(os.path.join(run_dir, "meta.json"))
        assert meta["spec_sha256"][:12] in run_dir
        again_dir, _, fresh_again = prepare_run(str(tmp_path), spec,
                                                spec.expand(), plan)
        assert again_dir == run_dir and not fresh_again
        # The run dir itself also works as the checkpoint_dir (--resume).
        direct_dir, _, direct_fresh = prepare_run(run_dir, spec,
                                                  spec.expand(), plan)
        assert direct_dir == run_dir and not direct_fresh

    def test_different_campaign_rejected(self, tmp_path):
        plan = ExecutionPlan(shards=1, lease_size=4)
        spec = self._spec()
        run_dir, _, _ = prepare_run(str(tmp_path), spec, spec.expand(), plan)
        other = CampaignSpec(difficulties=("hard",), seeds=(0,),
                             frequencies_mhz=(100.0,))
        with pytest.raises(ValueError, match="different campaign"):
            prepare_run(run_dir, other, other.expand(), plan)

    def test_different_plan_rejected(self, tmp_path):
        spec = self._spec()
        plan = ExecutionPlan(shards=2, lease_size=4)
        prepare_run(str(tmp_path), spec, spec.expand(), plan)
        changed = ExecutionPlan(shards=2, lease_size=8)
        with pytest.raises(ValueError, match="execution plan"):
            prepare_run(str(tmp_path), spec, spec.expand(), changed)

    def test_stale_run_schema_rejected(self, tmp_path):
        spec = self._spec()
        plan = ExecutionPlan(shards=1, lease_size=4)
        run_dir, _, _ = prepare_run(str(tmp_path), spec, spec.expand(), plan)
        meta_path = os.path.join(run_dir, "meta.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["run_schema_version"] = RUN_SCHEMA_VERSION + 1
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        with pytest.raises(ValueError, match="run schema"):
            prepare_run(str(tmp_path), spec, spec.expand(), plan)

    def test_journal_path_inside_run_dir(self, tmp_path):
        spec = self._spec()
        run_dir, _, _ = prepare_run(
            str(tmp_path), spec, spec.expand(),
            ExecutionPlan(shards=1, lease_size=4))
        assert os.path.dirname(journal_path(run_dir)) == run_dir


class TestSpecSchemaVersion:
    def test_to_dict_carries_version(self):
        assert CampaignSpec().to_dict()["schema_version"] == 1
        assert EpisodeSpec(difficulty=Difficulty.EASY,
                           seed=0).to_dict()["schema_version"] == 1

    def test_missing_version_means_first_version(self):
        # Pre-versioning payloads (e.g. checked-in fuzz fixtures) load.
        payload = CampaignSpec().to_dict()
        payload.pop("schema_version")
        assert CampaignSpec.from_dict(payload) == CampaignSpec()

    def test_mismatched_version_fails_loudly(self):
        payload = CampaignSpec().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema v99"):
            CampaignSpec.from_dict(payload)
        episode = EpisodeSpec(difficulty=Difficulty.EASY, seed=0).to_dict()
        episode["schema_version"] = 0
        with pytest.raises(ValueError, match="cannot be resumed"):
            EpisodeSpec.from_dict(episode)
