"""Fleet/scalar equivalence and determinism of the campaign scheduler.

The contract under test (see :mod:`repro.fleet.scheduler`):

* with batching *off*, a campaign reproduces per-episode
  :meth:`HILLoop.run_scenario` results **bit-for-bit** — the episode
  refactor and scheduler bookkeeping add zero numerical deviation;
* with batching *on*, discrete outcomes (success, crashes, iteration
  counts, solve times, flight times) are exactly equal and float metrics
  agree to GEMM round-off;
* repeated runs are bit-for-bit identical, including across
  ``PYTHONHASHSEED`` values (exercised via subprocesses).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.drone import Difficulty, generate_scenario
from repro.fleet import (
    CampaignSpec,
    EpisodeFactory,
    EpisodeSpec,
    FleetScheduler,
    run_campaign,
)
from repro.hil import HILConfig, HILLoop

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))

# A deliberately heterogeneous grid: two difficulties, two clock
# frequencies, and two control rates (the latter linearize two different
# MPC problems, so the scheduler must juggle two batch groups).
MIXED = CampaignSpec(
    name="mixed", difficulties=("easy", "medium"), seeds=(0, 1),
    frequencies_mhz=(100.0, 250.0), control_rates_hz=(100.0, 50.0))


def sequential_reference(episodes):
    """Per-episode run_scenario results — the ground truth."""
    loops = {}
    results = []
    for spec in episodes:
        key = (spec.implementation, spec.frequency_mhz, spec.variant,
               spec.control_rate_hz, spec.max_admm_iterations)
        if key not in loops:
            loops[key] = HILLoop(spec.hil_config())
        results.append(loops[key].run_scenario(
            generate_scenario(spec.difficulty, spec.seed)))
    return results


@pytest.fixture(scope="module")
def mixed_reference():
    return sequential_reference(MIXED.expand())


def assert_discrete_exact(reference, result):
    assert result.success == reference.success
    assert result.crashed == reference.crashed
    assert result.solve_iterations == reference.solve_iterations
    assert result.solve_times == reference.solve_times
    assert result.flight_time_s == reference.flight_time_s


class TestFleetScalarEquivalence:
    def test_unbatched_campaign_bit_for_bit(self, mixed_reference):
        outcome = run_campaign(MIXED, batching=False)
        assert len(outcome.results) == len(mixed_reference)
        for reference, result in zip(mixed_reference, outcome.results):
            assert_discrete_exact(reference, result)
            # Scalar-path scheduling is the *same* solver code path as
            # run_scenario, so every float matches exactly.
            assert result.final_distance == reference.final_distance
            assert result.actuation_power_w == reference.actuation_power_w
            assert result.soc_power_w == reference.soc_power_w

    def test_batched_campaign_matches_sequential(self, mixed_reference):
        outcome = run_campaign(MIXED)
        assert outcome.stats.batched_solves > 0
        assert outcome.stats.groups == 2      # two control rates, two problems
        for reference, result in zip(mixed_reference, outcome.results):
            assert_discrete_exact(reference, result)
            assert result.final_distance == pytest.approx(
                reference.final_distance, rel=1e-6, abs=1e-9)
            assert result.actuation_power_w == pytest.approx(
                reference.actuation_power_w, rel=1e-6)
            assert result.soc_power_w == pytest.approx(
                reference.soc_power_w, rel=1e-6)

    def test_slot_sharing_preserves_results(self, mixed_reference):
        """A width cap forces episodes to share solver slots across
        dispatches; warm-start parking must keep outcomes identical."""
        outcome = run_campaign(MIXED, max_batch=3)
        assert outcome.stats.max_batch_width <= 3
        for reference, result in zip(mixed_reference, outcome.results):
            assert_discrete_exact(reference, result)
            assert result.final_distance == pytest.approx(
                reference.final_distance, rel=1e-6, abs=1e-9)

    def test_repeated_runs_bitwise_identical(self):
        first = run_campaign(MIXED)
        second = run_campaign(MIXED)
        for a, b in zip(first.results, second.results):
            assert a.final_distance == b.final_distance
            assert a.actuation_power_w == b.actuation_power_w
            assert a.solve_iterations == b.solve_iterations

    def test_run_scenarios_delegates_to_scheduler(self):
        """HILLoop.run_scenarios keeps its contract on the fleet engine."""
        config = HILConfig(implementation="vector", frequency_mhz=100.0)
        scenarios = [generate_scenario(Difficulty.EASY, seed=0),
                     generate_scenario(Difficulty.MEDIUM, seed=1)]
        sequential = HILLoop(config).run_scenarios(scenarios, batched=False)
        batched = HILLoop(config).run_scenarios(scenarios, batched=True)
        for reference, result in zip(sequential, batched):
            assert_discrete_exact(reference, result)
            assert result.final_distance == pytest.approx(
                reference.final_distance, rel=1e-6, abs=1e-9)


class TestSchedulerMechanics:
    def test_empty_fleet(self):
        assert FleetScheduler([]).run() == []

    def test_duplicate_episode_ids_rejected(self):
        factory = EpisodeFactory()
        spec = EpisodeSpec(Difficulty.EASY, 0)
        episodes = [factory.build(spec, episode_id=3),
                    factory.build(spec, episode_id=3)]
        with pytest.raises(ValueError, match="duplicate"):
            FleetScheduler(episodes)

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            FleetScheduler([], max_batch=0)

    def test_singleton_groups_use_scalar_path(self):
        factory = EpisodeFactory()
        episodes = [factory.build(EpisodeSpec(Difficulty.EASY, 0), 0),
                    factory.build(EpisodeSpec(Difficulty.EASY, 1,
                                              control_rate_hz=50.0), 1)]
        scheduler = FleetScheduler(episodes)
        scheduler.run()
        # Two groups of one episode each: everything solves on the scalar path.
        assert scheduler.stats.scalar_solves > 0
        assert scheduler.stats.batched_solves == 0

    def test_stats_accounting(self):
        outcome = run_campaign(CampaignSpec(difficulties="easy", seeds=(0, 1)))
        stats = outcome.stats
        assert stats.episodes == 2
        assert stats.solves == stats.batched_solves + stats.scalar_solves
        assert 0 < stats.mean_batch_width <= stats.max_batch_width
        row = stats.as_row()
        assert row["episodes"] == 2 and row["dispatches"] == stats.dispatches


_HASHSEED_PROBE = r"""
import hashlib, sys
sys.path.insert(0, {src!r})
from repro.drone import Difficulty, generate_scenario
from repro.fleet import CampaignSpec, run_campaign

digest = hashlib.sha256()
for difficulty in Difficulty:
    for seed in range(3):
        scenario = generate_scenario(difficulty, seed)
        digest.update(repr(scenario.waypoints).encode())
outcome = run_campaign(CampaignSpec(
    difficulties="easy", seeds=(0,), implementations="ideal"))
digest.update(outcome.results[0].final_distance.hex().encode())
digest.update(repr(outcome.results[0].solve_iterations[:50]).encode())
print(digest.hexdigest())
"""


class TestHashSeedDeterminism:
    def test_campaign_stable_across_pythonhashseed(self):
        """Scenario generation and campaign results must not depend on the
        interpreter's hash salt (the old ``hash()``-seeded generator did)."""
        digests = []
        for hashseed in ("0", "424242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env.pop("PYTHONPATH", None)
            script = _HASHSEED_PROBE.format(
                src=os.path.join(REPO_ROOT, "src"))
            output = subprocess.run(
                [sys.executable, "-c", script], env=env, check=True,
                capture_output=True, text=True, timeout=300)
            digests.append(output.stdout.strip())
        assert digests[0] == digests[1]
        assert len(digests[0]) == 64
