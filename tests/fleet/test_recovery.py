"""Fleet/scalar equivalence for disturbance-recovery campaigns (Fig. 17).

The contract mirrors ``tests/fleet/test_scheduler.py`` for the recovery
episode kind, now that disturbance episodes run through the shared
:class:`~repro.hil.episode.EpisodeRunner` state machine:

* with batching *off*, a recovery campaign reproduces per-episode
  :meth:`HILLoop.run_disturbance` results **bit-for-bit**;
* with batching *on*, discrete outcomes (recovered, crash-driven
  ``time_to_recovery=None``) are exactly equal and float metrics (TTR, max
  deviation) agree to GEMM round-off;
* the streaming aggregator reports per-category recovery statistics,
  including the maximum recoverable magnitude on a magnitude ladder.
"""

import pytest

from repro.fleet import CampaignSpec, run_campaign
from repro.hil import HILConfig, HILLoop

# A reduced but real slice of the Fig. 17 suite: two implementations times
# (force x 2 kinds x 3 axes + combined x 2 kinds) = 16 recovery episodes.
RECOVERY = CampaignSpec(
    name="recovery-mixed", episode_kind="recovery",
    implementations=("scalar", "vector"),
    disturbance_categories=("force", "combined"),
    recovery_duration=2.0)


def serial_reference(episodes):
    """Per-episode run_disturbance results — the ground truth."""
    loops = {}
    results = []
    for spec in episodes:
        key = (spec.implementation, spec.frequency_mhz, spec.variant,
               spec.control_rate_hz, spec.max_admm_iterations)
        if key not in loops:
            loops[key] = HILLoop(spec.hil_config())
        results.append(loops[key].run_disturbance(
            spec.disturbance, spec.hold_position, spec.recovery_duration))
    return results


@pytest.fixture(scope="module")
def recovery_reference():
    return serial_reference(RECOVERY.expand())


def assert_discrete_exact(reference, result):
    assert result.recovered == reference.recovered
    assert ((result.time_to_recovery is None)
            == (reference.time_to_recovery is None))
    assert result.disturbance == reference.disturbance


class TestRecoveryFleetEquivalence:
    def test_expansion_matches_paper_suite(self):
        full = CampaignSpec(episode_kind="recovery")
        assert len(full.disturbances()) == 14      # the paper's Fig. 17 suite
        assert RECOVERY.size == len(RECOVERY.expand()) == 16

    def test_unbatched_campaign_bit_for_bit(self, recovery_reference):
        outcome = run_campaign(RECOVERY, batching=False)
        assert len(outcome.results) == len(recovery_reference)
        for reference, result in zip(recovery_reference, outcome.results):
            assert_discrete_exact(reference, result)
            # Scalar-path scheduling is the *same* solver code path as
            # run_disturbance, so every float matches exactly.
            assert result.time_to_recovery == reference.time_to_recovery
            assert result.max_deviation == reference.max_deviation

    def test_batched_campaign_matches_serial(self, recovery_reference):
        outcome = run_campaign(RECOVERY)
        assert outcome.stats.batched_solves > 0
        # One MPC problem and one settings tuple: the whole suite, both
        # implementations included, packs into a single batch group.
        assert outcome.stats.groups == 1
        for reference, result in zip(recovery_reference, outcome.results):
            assert_discrete_exact(reference, result)
            if reference.time_to_recovery is not None:
                assert result.time_to_recovery == pytest.approx(
                    reference.time_to_recovery, abs=1e-9)
            assert result.max_deviation == pytest.approx(
                reference.max_deviation, rel=1e-6)

    def test_repeated_runs_bitwise_identical(self):
        first = run_campaign(RECOVERY)
        second = run_campaign(RECOVERY)
        for a, b in zip(first.results, second.results):
            assert a.recovered == b.recovered
            assert a.time_to_recovery == b.time_to_recovery
            assert a.max_deviation == b.max_deviation


class TestRecoveryAggregation:
    def test_recovery_rows_per_category_and_kind(self):
        outcome = run_campaign(RECOVERY)
        rows = outcome.rows()
        assert len(rows) == 8        # 2 impls x 2 categories x 2 kinds
        assert {row["disturbance_category"] for row in rows} == {
            "force", "combined"}
        assert {row["implementation"] for row in rows} == {"scalar", "vector"}
        for row in rows:
            assert 0.0 <= row["recovery_rate"] <= 1.0
            assert row["episodes"] in (1, 3)     # combined has one direction
        overall = outcome.overall()
        assert overall["recovery_episodes"] == 16
        assert overall["episodes"] == 16

    def test_magnitude_ladder_reports_max_recoverable(self):
        """An absurd ladder rung must fail and show up in the cell extremes."""
        ladder = CampaignSpec(
            name="ladder", episode_kind="recovery",
            implementations=("vector",),
            disturbance_categories=("torque",),
            disturbance_kinds=("step",),
            disturbance_scales=(1.0, 500.0),
            recovery_duration=2.0)
        outcome = run_campaign(ladder)
        (row,) = outcome.rows()
        assert row["episodes"] == 6              # 3 axes x 2 rungs
        assert 0.0 < row["recovery_rate"] < 1.0
        assert row["max_recovered_magnitude"] == pytest.approx(0.002)
        assert row["min_unrecovered_magnitude"] == pytest.approx(1.0)

    def test_sharded_recovery_campaign_matches_in_process(self):
        small = CampaignSpec(
            name="sharded", episode_kind="recovery",
            implementations=("vector",),
            disturbance_categories=("combined",),
            recovery_duration=2.0)
        in_process = run_campaign(small, workers=1)
        sharded = run_campaign(small, workers=2)
        for a, b in zip(in_process.results, sharded.results):
            assert a.recovered == b.recovered
            assert b.max_deviation == pytest.approx(a.max_deviation, rel=1e-6)
        assert sharded.overall()["recovery_episodes"] == 2

    def test_memory_bounded_mode_keeps_recovery_rows(self):
        bounded = run_campaign(RECOVERY, keep_results=False)
        full = run_campaign(RECOVERY, keep_results=True)
        assert bounded.results == []
        assert [row["recovery_rate"] for row in bounded.rows()] == \
            [row["recovery_rate"] for row in full.rows()]


class TestRecoverySpecValidation:
    def test_round_trip_dict(self):
        clone = CampaignSpec.from_dict(RECOVERY.to_dict())
        assert clone == RECOVERY
        assert clone.expand() == RECOVERY.expand()

    def test_unknown_episode_kind_rejected(self):
        with pytest.raises(ValueError, match="episode_kind"):
            CampaignSpec(episode_kind="hover")

    def test_unknown_disturbance_axes_rejected(self):
        with pytest.raises(ValueError, match="category"):
            CampaignSpec(episode_kind="recovery",
                         disturbance_categories=("wind",))
        with pytest.raises(ValueError, match="kind"):
            CampaignSpec(episode_kind="recovery",
                         disturbance_kinds=("ramp",))
        with pytest.raises(ValueError, match="scales"):
            CampaignSpec(episode_kind="recovery",
                         disturbance_scales=(0.0,))

    def test_recovery_requires_single_difficulty(self):
        with pytest.raises(ValueError, match="difficulty"):
            CampaignSpec(episode_kind="recovery",
                         difficulties=("easy", "hard"))

    def test_waypoint_campaign_ignores_disturbance_axes(self):
        spec = CampaignSpec(difficulties=("easy",), seeds=(0, 1))
        assert spec.size == 2
        assert spec.disturbances() == []
        assert all(e.disturbance is None for e in spec.expand())
