"""The design_point episode kind: protocol, equality, and durability.

Covers the workload-polymorphic engine contract end to end:

* the :class:`~repro.fleet.kinds.EpisodeKind` registry and dispatch;
* ``CampaignSpec(episode_kind="design_point")`` validation and
  deterministic grid expansion with invalid-combination skipping;
* the acceptance bar — every figure sweep routed through the fleet engine
  is bit-identical to its retained serial reference;
* journal (de)serialization round trips and byte-identical
  checkpoint/resume, including SIGKILL-mid-run and chunk
  bisection/quarantine, reusing the chaos harness idioms from
  ``test_chaos.py``.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.fleet import (
    CampaignSpec,
    FleetAggregator,
    RetryPolicy,
    run_campaign,
)
from repro.fleet.design_point import (
    DesignPointResult,
    DesignPointSpec,
    default_level_for,
    evaluate_design_point,
)
from repro.fleet.durable import journal_path, result_from_dict, result_to_dict
from repro.fleet.kinds import (
    episode_kind_names,
    get_episode_kind,
    kind_for_result,
)

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", ".."))

# Every catalog point at every level it supports (invalid combinations are
# skipped during expansion) = 48 trace-fidelity episodes.
ALL_LEVELS = ("library", "eigen", "unrolled", "fused", "cisc", "static",
              "scratchpad", "elementwise", "optimized")
GRID = CampaignSpec(name="dse-grid", episode_kind="design_point",
                    codegen_levels=ALL_LEVELS)


class TestKindRegistry:
    def test_builtin_kinds_registered_in_order(self):
        names = episode_kind_names()
        assert names == ("waypoint", "recovery", "design_point")

    def test_unknown_kind_rejected_with_options(self):
        with pytest.raises(ValueError, match="unknown episode_kind"):
            get_episode_kind("nope")
        with pytest.raises(ValueError, match="design_point"):
            CampaignSpec(episode_kind="nope").validate()

    def test_result_dispatch(self):
        result = evaluate_design_point(DesignPointSpec(design_point="rocket"))
        assert kind_for_result(result).name == "design_point"
        with pytest.raises(TypeError, match="unknown episode result type"):
            kind_for_result(object())

    def test_kind_owns_its_aggregation_contract(self):
        kind = get_episode_kind("design_point")
        assert kind.cells_field == "design_cells"
        assert "design_point" in kind.cell_axes
        assert "fidelity" in kind.cell_axes


class TestSpecValidation:
    def test_unknown_axis_values_rejected(self):
        bad = [
            dict(programs=("unregistered",)),
            dict(design_points=("not-a-point",)),
            dict(codegen_levels=("warp-speed",)),
            dict(fidelities=("vibes",)),
            dict(lmuls=(0,)),
            dict(sync_granularities=(0,)),
            dict(solve_iterations=0),
        ]
        for overrides in bad:
            # Validation is eager: a bad axis never survives construction.
            with pytest.raises(ValueError):
                CampaignSpec(episode_kind="design_point", **overrides)

    def test_empty_expansion_rejected(self):
        # 'fused' is a vector-only level; on a scalar-only point list the
        # whole grid is skipped and the campaign is vacuous.
        with pytest.raises(ValueError):
            CampaignSpec(episode_kind="design_point",
                         design_points=("rocket",),
                         codegen_levels=("fused",))

    def test_expansion_is_deterministic_and_skips_invalid(self):
        assert GRID.expand() == GRID.expand()
        assert GRID.size == len(GRID.expand()) == 48
        mixed = CampaignSpec(
            episode_kind="design_point",
            design_points=("rocket", "saturn-v256-d128-rocket",
                           "gemmini-4x4-os-64k-rocket"),
            codegen_levels=("auto",), lmuls=(1, 4),
            sync_granularities=(None, 8))
        specs = mixed.expand()
        # lmul != 1 only applies to the vector point; sync granularity only
        # to the systolic point; the (4, 8) cross term applies to neither.
        assert len(specs) == 1 + 2 + 2
        for spec in specs:
            # 'auto' stays symbolic in the spec (the cell key users see)
            # and resolves deterministically at evaluation time.
            assert spec.resolved_level() != "auto"
        assert mixed.size == len(specs)

    def test_spec_round_trips_design_axes(self):
        spec = CampaignSpec(episode_kind="design_point",
                            design_points=("rocket",),
                            fidelities=("model", "trace"),
                            sync_granularities=(None, 4), lmuls=(1, 2))
        payload = json.loads(json.dumps(spec.to_dict()))
        restored = CampaignSpec.from_dict(payload)
        assert restored == spec
        # HIL campaigns keep their serialized form free of DSE fields, so
        # existing spec digests and checkpoints stay valid.
        hil = CampaignSpec(difficulties=("easy",), seeds=(0,))
        assert "design_points" not in hil.to_dict()


class TestSerialFleetEquality:
    """The acceptance bar: fleet-routed figure rows are bit-identical to the
    retained serial reference loops."""

    def test_fig10_rows_bit_identical(self):
        from repro.experiments.pareto_experiments import fig10_pareto
        serial = fig10_pareto(engine="serial")
        fleet = fig10_pareto(engine="fleet")
        assert serial == fleet
        assert len(serial) == 15

    @pytest.mark.parametrize("figure", ["fig6_static_mapping",
                                        "fig7_scratchpad_resident",
                                        "fig9_sync_granularity",
                                        "fig12_engine_ablation"])
    def test_gemmini_rows_bit_identical(self, figure):
        from repro.experiments import gemmini_experiments
        fn = getattr(gemmini_experiments, figure)
        assert fn(engine="serial") == fn(engine="fleet")

    def test_fig13_rows_bit_identical(self):
        from repro.experiments.kernel_experiments import \
            fig13_kernel_comparison
        assert fig13_kernel_comparison(engine="serial") == \
            fig13_kernel_comparison(engine="fleet")

    def test_model_fidelity_matches_trace_on_catalog_defaults(self):
        from repro.arch import list_design_points
        for point in list_design_points():
            spec = DesignPointSpec(design_point=point.name,
                                   codegen_level=default_level_for(point))
            trace = evaluate_design_point(spec)
            model = evaluate_design_point(
                DesignPointSpec(design_point=point.name,
                                codegen_level=spec.codegen_level,
                                fidelity="model"))
            assert model.total_cycles == trace.total_cycles, point.name
            assert model.instruction_count == trace.instruction_count


class TestJournalRoundTrip:
    def test_result_round_trips_through_json(self):
        spec = DesignPointSpec(design_point="gemmini-4x4-os-64k-rocket",
                               codegen_level="optimized", sync_granularity=4)
        result = evaluate_design_point(spec)
        payload = result_to_dict(result)
        assert payload["kind"] == "design_point"
        restored = result_from_dict(json.loads(json.dumps(payload)))
        assert isinstance(restored, DesignPointResult)
        assert restored == result

    def test_aggregator_round_trips_design_cells(self):
        outcome = run_campaign(CampaignSpec(
            name="agg", episode_kind="design_point",
            design_points=("rocket", "shuttle"),
            fidelities=("model", "trace")))
        aggregator = outcome.aggregate
        restored = FleetAggregator.from_dict(
            json.loads(json.dumps(aggregator.to_dict())))
        assert restored.design_rows() == aggregator.design_rows()
        assert restored.design_episodes == 4
        merged = FleetAggregator()
        merged.merge(aggregator)
        merged.merge(restored)
        assert merged.design_episodes == 8
        for row in merged.design_rows():
            assert row["episodes"] == 2


def _rows_bytes(outcome):
    return json.dumps(outcome.rows(), sort_keys=True)


def _results_payload(outcome):
    return [result_to_dict(result) for result in outcome.results]


class TestDurableDesignCampaigns:
    """Checkpoint/resume and fault tolerance for solver-less episodes."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        run_dir = str(tmp_path_factory.mktemp("dse-reference"))
        outcome = run_campaign(GRID, workers=2, checkpoint_dir=run_dir,
                               lease_size=4)
        assert len(outcome.results) == 48 and not outcome.failures
        return outcome

    def test_completed_resume_is_pure_replay(self, reference):
        resumed = run_campaign(GRID, workers=2,
                               checkpoint_dir=reference.run_dir,
                               lease_size=4)
        assert resumed.report.spawned_workers == 0
        assert resumed.report.replayed_chunks > 0
        assert _rows_bytes(resumed) == _rows_bytes(reference)
        assert _results_payload(resumed) == _results_payload(reference)

    def test_parent_sigkill_then_resume_byte_identical(self, reference,
                                                       tmp_path):
        """Kill the whole campaign process mid-run, resume, and get
        byte-identical rows and journaled results (same harness as the HIL
        chaos test — the invariant is kind-agnostic)."""
        checkpoint = str(tmp_path / "ckpt")
        driver = tmp_path / "driver.py"
        driver.write_text(
            "import json, sys\n"
            "sys.path.insert(0, {!r})\n"
            "from repro.fleet import CampaignSpec, run_campaign\n"
            "spec = CampaignSpec.from_dict(json.loads(sys.argv[1]))\n"
            "run_campaign(spec, workers=2, checkpoint_dir=sys.argv[2],\n"
            "             lease_size=4)\n"
            "print('COMPLETED')\n".format(os.path.join(REPO_ROOT, "src")))
        process = subprocess.Popen(
            [sys.executable, str(driver), json.dumps(GRID.to_dict()),
             checkpoint],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        journal = None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline and process.poll() is None:
            if journal is None:
                candidates = ([os.path.join(checkpoint, d)
                               for d in os.listdir(checkpoint)]
                              if os.path.isdir(checkpoint) else [])
                runs = [d for d in candidates
                        if os.path.exists(journal_path(d))]
                if runs:
                    journal = journal_path(runs[0])
            elif open(journal, "rb").read().count(b'"t":"commit"') >= 2:
                process.kill()
                break
            time.sleep(0.01)
        process.wait(timeout=120)
        stdout = process.stdout.read()
        process.stdout.close()
        process.stderr.close()
        resumed = run_campaign(GRID, workers=2, checkpoint_dir=checkpoint,
                               lease_size=4)
        if "COMPLETED" not in stdout:
            # The interesting case: the kill landed mid-run and the resume
            # had fresh chunks to execute.  On a very fast machine the
            # driver may finish first, degrading to the replay case above.
            assert resumed.report.fresh_chunks > 0
        assert _rows_bytes(resumed) == _rows_bytes(reference)
        assert _results_payload(resumed) == _results_payload(reference)

    def test_poisoned_episode_bisected_and_quarantined(self, reference,
                                                       tmp_path, monkeypatch):
        """A deterministically-raising design episode is isolated by chunk
        bisection; every sibling's row is bit-identical to the clean run
        (the solver-less path has no batching round-off to forgive)."""
        monkeypatch.setenv("REPRO_CHAOS",
                           json.dumps({"episode": 5, "mode": "raise"}))
        retry = RetryPolicy(max_attempts=2, backoff_base=0.02)
        poisoned = run_campaign(GRID, workers=2,
                                checkpoint_dir=str(tmp_path / "poisoned"),
                                lease_size=4, retry_policy=retry)
        assert [failure.index for failure in poisoned.failures] == [5]
        assert poisoned.failures[0].error_type == "ChaosError"
        assert poisoned.report.quarantined == 1
        assert poisoned.results[5] is None
        for index, (clean, survivor) in enumerate(
                zip(reference.results, poisoned.results)):
            if index == 5:
                continue
            assert survivor == clean, index
