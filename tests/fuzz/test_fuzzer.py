"""The campaign fuzzer's search logic, shrinking, and determinism.

The bisection/bracketing machinery is exercised against *synthetic*
oracles (a planted severity threshold per axis) so convergence properties
are testable without flying thousands of episodes; a small real campaign
then pins cross-process determinism — the same ``FuzzConfig`` must produce
byte-identical reports and fixtures regardless of ``PYTHONHASHSEED``.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.drone.disturbance import RecoveryResult
from repro.fuzz import (
    AXES,
    FuzzConfig,
    axis_names,
    fixture_filename,
    load_fixtures,
    run_fuzz_campaign,
)
from repro.fuzz.axes import get_axis
from repro.fuzz.campaign_fuzzer import _ladder, _midpoint, _round_sig

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


def severity(spec):
    """The scalar knob a synthetic oracle thresholds on."""
    if spec.mass_scale != 1.0:
        return spec.mass_scale
    if spec.sensor_faults is not None:
        faults = spec.sensor_faults
        return max(faults.noise_std, faults.latency_s, faults.dropout_rate)
    return spec.disturbance.magnitude


def make_oracle(threshold):
    def oracle(specs):
        return [RecoveryResult(recovered=severity(spec) <= threshold,
                               time_to_recovery=0.1, max_deviation=0.2,
                               disturbance=spec.disturbance)
                for spec in specs]
    return oracle


class TestSearchLogic:
    def test_bisection_converges_to_planted_threshold(self):
        for axis_name, threshold in (("force-step", 0.7),
                                     ("mass-mismatch", 1.7),
                                     ("sensor-dropout", 0.55)):
            oracle = make_oracle(threshold)
            config = FuzzConfig(seed=0, axes=(axis_name,), draws_per_axis=2,
                                rungs=5, bisect_rounds=8)
            report = run_fuzz_campaign(config, evaluate=oracle,
                                       evaluate_scalar=oracle)
            for boundary in report.boundaries:
                assert boundary.lo_pass is not None
                assert boundary.hi_fail is not None
                assert boundary.lo_pass <= threshold < boundary.hi_fail
                # Eight bisection rounds shrink the bracket far below the
                # coarse ladder spacing.
                assert (boundary.hi_fail - boundary.lo_pass) < 0.05 * threshold

    def test_whole_range_recovering_mints_no_fixture(self):
        oracle = make_oracle(float("inf"))
        config = FuzzConfig(seed=0, axes=("force-step",), draws_per_axis=1)
        report = run_fuzz_campaign(config, evaluate=oracle,
                                   evaluate_scalar=oracle)
        (boundary,) = report.boundaries
        assert boundary.hi_fail is None
        assert boundary.lo_pass == pytest.approx(AXES["force-step"].hi)
        assert boundary.fixture is None
        assert report.fixtures == []

    def test_whole_range_failing_reports_unbounded_low_side(self):
        oracle = make_oracle(0.0)
        config = FuzzConfig(seed=0, axes=("force-step",), draws_per_axis=1)
        report = run_fuzz_campaign(config, evaluate=oracle,
                                   evaluate_scalar=oracle)
        (boundary,) = report.boundaries
        assert boundary.lo_pass is None
        assert boundary.hi_fail == pytest.approx(AXES["force-step"].lo)
        assert boundary.fixture is not None

    def test_ladder_and_midpoint_geometry(self):
        log_axis = get_axis("force-step")
        ladder = _ladder(log_axis, 5)
        assert ladder[0] == pytest.approx(log_axis.lo)
        assert ladder[-1] == pytest.approx(log_axis.hi)
        ratios = [b / a for a, b in zip(ladder, ladder[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)
        assert _midpoint(log_axis, 1.0, 4.0) == pytest.approx(2.0)

        linear_axis = get_axis("sensor-dropout")
        ladder = _ladder(linear_axis, 4)
        steps = [b - a for a, b in zip(ladder, ladder[1:])]
        assert all(s == pytest.approx(steps[0]) for s in steps)
        assert _midpoint(linear_axis, 0.2, 0.4) == pytest.approx(0.3)

    def test_round_sig(self):
        assert _round_sig(0.701377, 2) == pytest.approx(0.70)
        assert _round_sig(0.701377, 3) == pytest.approx(0.701)
        assert _round_sig(1936.5, 2) == pytest.approx(1900.0)
        assert _round_sig(0.0, 2) == 0.0

    def test_config_validation(self):
        with pytest.raises(KeyError):
            FuzzConfig(axes=("no-such-axis",))
        with pytest.raises(ValueError):
            FuzzConfig(rungs=1)
        with pytest.raises(ValueError):
            FuzzConfig(draws_per_axis=0)
        assert FuzzConfig().axes == axis_names()


class TestNuisanceDraws:
    def test_draw_zero_is_canonical(self):
        for axis in AXES.values():
            nuisance = axis.draw_nuisance(fuzz_seed=123, draw=0)
            assert all(index == 0 for index in nuisance.values())

    def test_draws_deterministic_per_seed(self):
        axis = AXES["dryden-gust"]
        assert axis.draw_nuisance(7, 3) == axis.draw_nuisance(7, 3)
        draws = [axis.draw_nuisance(7, d) for d in range(16)]
        assert any(draw != draws[0] for draw in draws)   # actually varies

    def test_every_axis_builds_valid_specs(self):
        for axis in AXES.values():
            for draw in range(3):
                nuisance = axis.draw_nuisance(0, draw)
                for magnitude in (axis.lo, axis.hi):
                    spec = axis.build(magnitude, nuisance)
                    assert spec.is_recovery
                    # Round-trips through JSON: required for fixtures.
                    blob = json.dumps(spec.to_dict(), sort_keys=True)
                    assert json.dumps(spec.to_dict(), sort_keys=True) == blob


class TestShrinking:
    def test_shrunk_fixture_is_minimal_and_still_fails(self, tmp_path):
        threshold = 0.714159       # awkward digits: snapping has work to do
        oracle = make_oracle(threshold)
        config = FuzzConfig(seed=5, axes=("force-step",), draws_per_axis=3,
                            rungs=5, bisect_rounds=6)
        report = run_fuzz_campaign(config, fixture_dir=str(tmp_path),
                                   evaluate=oracle, evaluate_scalar=oracle)
        fixtures = load_fixtures(str(tmp_path))
        assert fixtures
        from repro.fleet.campaign import EpisodeSpec
        for _, payload in fixtures:
            spec = EpisodeSpec.from_dict(payload["spec"])
            # Still past the planted boundary...
            assert severity(spec) > threshold
            # ...with snapped magnitude (three significant digits or fewer)
            assert severity(spec) == pytest.approx(
                _round_sig(severity(spec), 3))
            assert payload["outcome"]["recovered"] is False

    def test_nuisances_shrink_to_canonical_when_irrelevant(self, tmp_path):
        # Severity ignores the nuisances entirely, so every shrink move
        # must be accepted and all draws collapse to one canonical fixture.
        oracle = make_oracle(0.5)
        config = FuzzConfig(seed=9, axes=("force-step",), draws_per_axis=4,
                            rungs=5, bisect_rounds=4)
        report = run_fuzz_campaign(config, fixture_dir=str(tmp_path),
                                   evaluate=oracle, evaluate_scalar=oracle)
        assert len(report.fixtures) == 1
        (name, payload), = load_fixtures(str(tmp_path))
        assert payload["spec"]["disturbance"]["direction"] == [1.0, 0.0, 0.0]
        assert payload["spec"]["disturbance"]["start_time"] == 0.5
        assert name == fixture_filename(payload)


class TestRealCampaignDeterminism:
    def test_identical_output_across_hash_seeds(self, tmp_path):
        """The real fuzzer is a pure function of its config: two fresh
        processes with different PYTHONHASHSEED must produce byte-identical
        reports and fixtures."""
        outputs = []
        for tag, hash_seed in (("a", "1"), ("b", "4242")):
            out_dir = tmp_path / tag
            out_dir.mkdir()
            env = dict(os.environ,
                       PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=os.path.join(REPO_ROOT, "src"))
            subprocess.run(
                [sys.executable,
                 os.path.join(REPO_ROOT, "scripts", "fuzz_campaign.py"),
                 "--seed", "2", "--axes", "force-step", "--draws", "1",
                 "--rungs", "3", "--bisect", "1", "--quiet",
                 "--fixtures-dir", str(out_dir / "fixtures"),
                 "--output", str(out_dir / "report.json")],
                check=True, env=env, timeout=600)
            report = (out_dir / "report.json").read_bytes()
            fixtures = {
                path.name: path.read_bytes()
                for path in sorted((out_dir / "fixtures").glob("*.json"))
            }
            outputs.append((report, fixtures))
        assert outputs[0][0] == outputs[1][0]
        assert list(outputs[0][1]) == list(outputs[1][1])
        for name in outputs[0][1]:
            assert outputs[0][1][name] == outputs[1][1][name]
