"""Replay the checked-in shrunk fuzz fixtures exactly.

Every JSON file under ``tests/fuzz/fixtures/`` is a minimal episode spec
the fuzzer found past the recovery boundary, together with the outcome
observed on the scalar execution path.  This suite re-flies each one
through the same path and fails on any divergence — so a behavioural
change to the plant, the solver, the gust/fault models, or the recovery
criterion that moves a pinned boundary point is caught as a concrete,
replayable diff rather than a silent drift of the Fig. 17 curves.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.fuzz import load_fixtures, replay_fixture

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

FIXTURES = load_fixtures(FIXTURE_DIR)


def test_fixture_corpus_is_present():
    """The acceptance bar: at least three shrunk fixtures are pinned, and
    they cover more than one fuzz axis."""
    assert len(FIXTURES) >= 3
    axes = {payload["axis"] for _, payload in FIXTURES}
    assert len(axes) >= 3


@pytest.mark.parametrize("name,payload", FIXTURES,
                         ids=[name for name, _ in FIXTURES])
def test_fixture_replays_exactly(name, payload):
    result, divergences = replay_fixture(payload)
    assert not divergences, "{} diverged: {}".format(
        name, "; ".join(divergences))
    # A fixture is by construction a *failure* past the boundary.
    assert payload["outcome"]["recovered"] is False
    assert not result.recovered


def test_replay_is_bit_deterministic_across_processes():
    """Two fresh interpreters with different PYTHONHASHSEED must report the
    exact same floats for the same fixture (full repr compared)."""
    name, payload = FIXTURES[0]
    script = (
        "import json,sys\n"
        "from repro.fuzz import replay_fixture\n"
        "payload=json.load(open(sys.argv[1]))\n"
        "result,div=replay_fixture(payload)\n"
        "print(repr((result.recovered, result.time_to_recovery,"
        " result.max_deviation, div)))\n"
    )
    outputs = []
    for hash_seed in ("17", "90210"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        completed = subprocess.run(
            [sys.executable, "-c", script,
             os.path.join(FIXTURE_DIR, name)],
            check=True, env=env, capture_output=True, text=True, timeout=600)
        outputs.append(completed.stdout)
    assert outputs[0] == outputs[1]


def test_fixtures_are_canonical_json():
    """Fixtures must be loadable and re-serialize to the bytes on disk
    (guards hand-edits that would break content-addressed filenames)."""
    for name, payload in FIXTURES:
        path = os.path.join(FIXTURE_DIR, name)
        with open(path) as handle:
            on_disk = handle.read()
        assert on_disk == json.dumps(payload, indent=2, sort_keys=True) + "\n"
