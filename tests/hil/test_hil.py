"""Tests for the HIL system simulation: SoC, UART, RTOS, metrics, closed loop."""

import numpy as np
import pytest

from repro.drone import Difficulty, Disturbance, DisturbanceCategory, DisturbanceType, \
    generate_scenario, hawk
from repro.hil import (
    DroNetWorkload,
    HILConfig,
    HILLoop,
    RTOSModel,
    SOFTWARE_IMPLEMENTATIONS,
    ScenarioResult,
    SoCModel,
    SweepCell,
    UARTLink,
    aggregate_cell,
    build_variant_problem,
    success_rate,
)
from repro.tinympc import default_quadrotor_problem


@pytest.fixture(scope="module")
def problem():
    return default_quadrotor_problem()


class TestUART:
    def test_latencies_positive_and_ordered(self):
        link = UARTLink()
        assert link.downlink_latency > link.uplink_latency > 0.0
        assert link.round_trip_latency == pytest.approx(
            link.downlink_latency + link.uplink_latency)

    def test_slower_baud_more_latency(self):
        slow = UARTLink(baud_rate=115200)
        fast = UARTLink(baud_rate=2_000_000)
        assert slow.round_trip_latency > fast.round_trip_latency

    def test_ideal_link_is_zero_latency(self):
        assert UARTLink.ideal().round_trip_latency == 0.0


class TestSoCModel:
    @pytest.mark.parametrize("implementation", sorted(SOFTWARE_IMPLEMENTATIONS))
    def test_named_implementations_compile(self, problem, implementation):
        soc = SoCModel.from_implementation(implementation, frequency_mhz=100.0)
        report = soc.compile_problem(problem)
        assert report.total_cycles > 0
        assert soc.solve_latency(10) > 0

    def test_unknown_implementation_rejected(self):
        with pytest.raises(KeyError):
            SoCModel.from_implementation("gpu", 100.0)

    def test_vector_faster_than_scalar(self, problem):
        scalar = SoCModel.from_implementation("scalar", 100.0)
        vector = SoCModel.from_implementation("vector", 100.0)
        scalar.compile_problem(problem)
        vector.compile_problem(problem)
        assert vector.solve_latency(10) < scalar.solve_latency(10)

    def test_latency_scales_inversely_with_frequency(self, problem):
        slow = SoCModel.from_implementation("vector", 50.0)
        fast = SoCModel.from_implementation("vector", 200.0)
        slow.compile_problem(problem)
        fast.compile_problem(problem)
        assert slow.solve_latency(10) == pytest.approx(4 * fast.solve_latency(10))

    def test_timing_requires_compilation(self):
        soc = SoCModel.from_implementation("vector", 100.0)
        with pytest.raises(RuntimeError):
            soc.solve_latency(10)

    def test_power_positive_and_activity_scaled(self, problem):
        soc = SoCModel.from_implementation("vector", 100.0)
        soc.compile_problem(problem)
        assert 0.0 < soc.power(0.0) < soc.power(1.0)


class TestRTOSAndDroNet:
    def test_occupancy_bounded(self):
        rtos = RTOSModel(mpc_rate_hz=50.0)
        assert rtos.mpc_occupancy(0.0) < 0.01
        assert rtos.mpc_occupancy(1.0) == pytest.approx(1.0)

    def test_faster_mpc_frees_cpu_for_dronet(self):
        rtos = RTOSModel(mpc_rate_hz=50.0)
        slow = rtos.report("scalar", 100.0, solve_time_s=8e-3)
        fast = rtos.report("vector", 100.0, solve_time_s=1e-3)
        assert fast.background_fps > slow.background_fps
        assert fast.mpc_cpu_occupancy < slow.mpc_cpu_occupancy

    def test_dronet_fps_scales_with_frequency(self):
        dronet = DroNetWorkload()
        assert dronet.achievable_fps(200e6, 1.0) == pytest.approx(
            2 * dronet.achievable_fps(100e6, 1.0))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            DroNetWorkload().frame_time(0.0)
        with pytest.raises(ValueError):
            RTOSModel().mpc_occupancy(-1.0)


class TestMetrics:
    def _result(self, success, power=2.0):
        return ScenarioResult(
            scenario=generate_scenario(Difficulty.EASY, 0),
            implementation="vector", frequency_mhz=100.0, success=success,
            crashed=not success, final_distance=0.1, solve_times=[1e-3, 2e-3],
            solve_iterations=[5, 6], actuation_power_w=power, soc_power_w=0.05,
            flight_time_s=4.0)

    def test_success_rate(self):
        results = [self._result(True), self._result(True), self._result(False)]
        assert success_rate(results) == pytest.approx(2 / 3)
        assert success_rate([]) == 0.0

    def test_aggregate_cell(self):
        results = [self._result(True), self._result(False, power=3.0)]
        cell = aggregate_cell(results)
        assert isinstance(cell, SweepCell)
        assert cell.episodes == 2
        assert cell.success_rate == pytest.approx(0.5)
        assert cell.mean_actuation_power_w == pytest.approx(2.5)
        assert cell.median_solve_time_ms == pytest.approx(1.5)
        assert set(cell.as_row()) >= {"implementation", "frequency_mhz", "difficulty",
                                      "success_rate", "median_solve_time_ms"}

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_cell([])


class TestClosedLoop:
    def test_variant_problem_builds(self):
        problem = build_variant_problem(hawk(), control_rate_hz=100.0)
        assert problem.state_dim == 12 and problem.input_dim == 4

    def test_vector_100mhz_completes_easy_scenario(self):
        loop = HILLoop(HILConfig(implementation="vector", frequency_mhz=100.0))
        result = loop.run_scenario(generate_scenario(Difficulty.EASY, seed=0))
        assert result.success
        assert not result.crashed
        assert result.median_solve_time > 0
        assert result.actuation_power_w > 0.5
        assert result.soc_power_w > 0.0
        assert result.total_power_w == pytest.approx(
            result.actuation_power_w + result.soc_power_w)

    def test_ideal_policy_has_no_compute_cost(self):
        loop = HILLoop(HILConfig(implementation="ideal"))
        result = loop.run_scenario(generate_scenario(Difficulty.EASY, seed=1))
        assert result.success
        assert result.soc_power_w == 0.0

    def test_scalar_low_frequency_struggles_on_hard(self):
        """The Figure 16 mechanism: under-provisioned compute fails hard tasks.

        20 MHz is decisively below the stability cliff for this scenario
        (25 MHz sits on the knife edge, where float-level controller
        perturbations can flip the outcome).
        """
        slow = HILLoop(HILConfig(implementation="scalar", frequency_mhz=20.0))
        result = slow.run_scenario(generate_scenario(Difficulty.HARD, seed=0))
        assert not result.success

    def test_disturbance_recovery_with_vector_controller(self):
        loop = HILLoop(HILConfig(implementation="vector", frequency_mhz=100.0))
        disturbance = Disturbance(DisturbanceCategory.FORCE, DisturbanceType.STEP,
                                  (1.0, 0.0, 0.0), 0.05, start_time=0.5)
        result = loop.run_disturbance(disturbance, duration=2.5)
        assert result.recovered
        assert result.max_deviation > 0.0

    def test_crash_during_disturbance_window_is_not_recovered(self):
        """An unrecoverable wrench must report recovered=False with no TTR,
        even though the trajectory ends early (inside nothing)."""
        loop = HILLoop(HILConfig(implementation="vector", frequency_mhz=100.0))
        disturbance = Disturbance(DisturbanceCategory.TORQUE,
                                  DisturbanceType.STEP,
                                  (1.0, 0.0, 0.0), 1.0, start_time=0.5)
        result = loop.run_disturbance(disturbance, duration=2.5)
        assert result.recovered is False
        assert result.time_to_recovery is None
        assert result.max_deviation > 0.0

    def test_unaligned_impulse_start_runs_closed_loop(self):
        """An impulse start time off the physics-step grid still injects
        exactly one kick and the episode completes normally."""
        loop = HILLoop(HILConfig(implementation="vector", frequency_mhz=100.0))
        disturbance = Disturbance(DisturbanceCategory.FORCE,
                                  DisturbanceType.IMPULSE,
                                  (1.0, 0.0, 0.0), 0.05, start_time=0.5001)
        result = loop.run_disturbance(disturbance, duration=2.5)
        assert result.max_deviation > 0.0
        assert result.recovered

    def test_trajectory_recording(self):
        config = HILConfig(implementation="ideal", record_trajectory=True)
        loop = HILLoop(config)
        result = loop.run_scenario(generate_scenario(Difficulty.EASY, seed=2))
        assert result.positions is not None
        assert result.positions.shape[1] == 3


class TestBatchedScenarioRunner:
    def test_batched_matches_sequential_episodes(self):
        """run_scenarios(batched=True) reproduces per-episode run_scenario."""
        config = HILConfig(implementation="vector", frequency_mhz=100.0)
        scenarios = [generate_scenario(Difficulty.EASY, seed=0),
                     generate_scenario(Difficulty.MEDIUM, seed=1)]
        sequential = HILLoop(config).run_scenarios(scenarios, batched=False)
        batched = HILLoop(config).run_scenarios(scenarios, batched=True)
        assert len(batched) == len(sequential)
        for reference, result in zip(sequential, batched):
            assert result.success == reference.success
            assert result.crashed == reference.crashed
            assert result.solve_iterations == reference.solve_iterations
            assert result.solve_times == reference.solve_times
            assert result.flight_time_s == reference.flight_time_s
            assert result.final_distance == pytest.approx(
                reference.final_distance, rel=1e-6, abs=1e-9)
            assert result.actuation_power_w == pytest.approx(
                reference.actuation_power_w, rel=1e-6)
            assert result.soc_power_w == pytest.approx(
                reference.soc_power_w, rel=1e-6)

    def test_batched_ideal_policy(self):
        config = HILConfig(implementation="ideal")
        scenario = generate_scenario(Difficulty.EASY, seed=1)
        result = HILLoop(config).run_scenarios([scenario])[0]
        assert result.success
        assert result.soc_power_w == 0.0

    def test_empty_scenario_list(self):
        loop = HILLoop(HILConfig(implementation="vector", frequency_mhz=100.0))
        assert loop.run_scenarios([]) == []


class TestBatchedDisturbanceRunner:
    def test_batched_matches_sequential_disturbances(self):
        """run_disturbances(batched=True) reproduces run_disturbance."""
        loop = HILLoop(HILConfig(implementation="vector", frequency_mhz=100.0))
        disturbances = [
            Disturbance(DisturbanceCategory.FORCE, DisturbanceType.STEP,
                        (1.0, 0.0, 0.0), 0.08, start_time=0.5),
            Disturbance(DisturbanceCategory.TORQUE, DisturbanceType.IMPULSE,
                        (0.0, 0.0, 1.0), 0.002, start_time=0.5),
            Disturbance(DisturbanceCategory.COMBINED, DisturbanceType.STEP,
                        (1.0, 1.0, 0.5), 0.08, start_time=0.5),
        ]
        sequential = loop.run_disturbances(disturbances, duration=2.5,
                                           batched=False)
        batched = loop.run_disturbances(disturbances, duration=2.5,
                                        batched=True)
        assert len(batched) == len(sequential)
        for reference, result in zip(sequential, batched):
            assert result.recovered == reference.recovered
            assert ((result.time_to_recovery is None)
                    == (reference.time_to_recovery is None))
            if reference.time_to_recovery is not None:
                assert result.time_to_recovery == pytest.approx(
                    reference.time_to_recovery, abs=1e-9)
            assert result.max_deviation == pytest.approx(
                reference.max_deviation, rel=1e-6)
            assert result.disturbance == reference.disturbance

    def test_empty_disturbance_list(self):
        loop = HILLoop(HILConfig(implementation="vector", frequency_mhz=100.0))
        assert loop.run_disturbances([]) == []
