"""Unit and property tests for the matlib operator library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import matlib as ml
from repro.matlib import Mat, MatlibError


def _vec(values, name="v"):
    return ml.vector(values, name=name)


class TestMatrixProducts:
    def test_gemv_matches_numpy(self):
        A = np.arange(12.0).reshape(3, 4)
        x = np.array([1.0, 2.0, 3.0, 4.0])
        result = ml.gemv(Mat(A, name="A"), _vec(x))
        np.testing.assert_allclose(result.data, A @ x)

    def test_gemv_t_matches_numpy(self):
        A = np.arange(12.0).reshape(3, 4)
        x = np.array([1.0, 2.0, 3.0])
        result = ml.gemv_t(Mat(A, name="A"), _vec(x))
        np.testing.assert_allclose(result.data, A.T @ x)

    def test_gemm_matches_numpy(self):
        A = np.arange(6.0).reshape(2, 3)
        B = np.arange(12.0).reshape(3, 4)
        result = ml.gemm(Mat(A, name="A"), Mat(B, name="B"))
        np.testing.assert_allclose(result.data, A @ B)

    def test_gemv_shape_mismatch_raises(self):
        A = np.zeros((3, 4))
        with pytest.raises(MatlibError):
            ml.gemv(Mat(A, name="A"), _vec([1.0, 2.0]))

    def test_gemm_requires_2d(self):
        with pytest.raises(MatlibError):
            ml.gemm(_vec([1.0, 2.0]), _vec([3.0, 4.0]))

    def test_dot(self):
        assert ml.dot(_vec([1.0, 2.0, 3.0]), _vec([4.0, 5.0, 6.0])) == pytest.approx(32.0)

    def test_dot_shape_mismatch(self):
        with pytest.raises(MatlibError):
            ml.dot(_vec([1.0]), _vec([1.0, 2.0]))

    def test_outer(self):
        result = ml.outer(_vec([1.0, 2.0]), _vec([3.0, 4.0, 5.0]))
        assert result.shape == (2, 3)
        np.testing.assert_allclose(result.data, np.outer([1, 2], [3, 4, 5]))

    def test_output_buffer_reused(self):
        A = np.eye(3)
        out = ml.zeros(3, name="out")
        result = ml.gemv(Mat(A, name="A"), _vec([1.0, 2.0, 3.0]), out=out)
        assert result is out
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])


class TestElementwise:
    def test_add_sub_scale(self):
        x, y = _vec([1.0, 2.0]), _vec([3.0, 5.0])
        np.testing.assert_allclose(ml.add(x, y).data, [4.0, 7.0])
        np.testing.assert_allclose(ml.sub(x, y).data, [-2.0, -3.0])
        np.testing.assert_allclose(ml.scale(2.0, x).data, [2.0, 4.0])

    def test_axpy(self):
        np.testing.assert_allclose(
            ml.axpy(2.0, _vec([1.0, 2.0]), _vec([10.0, 20.0])).data, [12.0, 24.0])

    def test_negate_abs_relu(self):
        x = _vec([-1.0, 2.0, -3.0])
        np.testing.assert_allclose(ml.negate(x).data, [1.0, -2.0, 3.0])
        np.testing.assert_allclose(ml.abs_(x).data, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(ml.relu(x).data, [0.0, 2.0, 0.0])

    def test_clip(self):
        x = _vec([-5.0, 0.5, 5.0])
        result = ml.clip(x, _vec([-1.0, -1.0, -1.0]), _vec([1.0, 1.0, 1.0]))
        np.testing.assert_allclose(result.data, [-1.0, 0.5, 1.0])

    def test_ewise_min_max_mul(self):
        x, y = _vec([1.0, 5.0]), _vec([3.0, 2.0])
        np.testing.assert_allclose(ml.ewise_min(x, y).data, [1.0, 2.0])
        np.testing.assert_allclose(ml.ewise_max(x, y).data, [3.0, 5.0])
        np.testing.assert_allclose(ml.ewise_mul(x, y).data, [3.0, 10.0])

    def test_sub_scaled(self):
        np.testing.assert_allclose(
            ml.sub_scaled(_vec([10.0, 10.0]), 2.0, _vec([1.0, 2.0])).data, [8.0, 6.0])


class TestReductions:
    def test_max_reduce(self):
        assert ml.max_reduce(_vec([1.0, 9.0, 3.0])) == pytest.approx(9.0)

    def test_max_abs_reduce(self):
        assert ml.max_abs_reduce(_vec([1.0, -9.0, 3.0])) == pytest.approx(9.0)

    def test_max_abs_diff(self):
        assert ml.max_abs_diff(_vec([1.0, 2.0]), _vec([4.0, 2.5])) == pytest.approx(3.0)

    def test_max_abs_diff_shape_mismatch(self):
        with pytest.raises(MatlibError):
            ml.max_abs_diff(_vec([1.0]), _vec([1.0, 2.0]))


class TestDataMovement:
    def test_copy_into(self):
        dst = ml.zeros(3, name="dst")
        ml.copy_into(_vec([1.0, 2.0, 3.0]), dst)
        np.testing.assert_allclose(dst.data, [1.0, 2.0, 3.0])

    def test_load_store(self):
        loaded = ml.load(np.array([1.0, 2.0]), name="work")
        assert loaded.name == "work"
        home = ml.zeros(2, name="home")
        ml.store(loaded, home)
        np.testing.assert_allclose(home.data, [1.0, 2.0])


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

finite_vectors = arrays(np.float64, st.integers(1, 24),
                        elements=st.floats(-1e3, 1e3, allow_nan=False))


@settings(max_examples=40, deadline=None)
@given(finite_vectors, finite_vectors)
def test_add_commutes(a, b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    left = ml.add(_vec(a), _vec(b)).data
    right = ml.add(_vec(b), _vec(a)).data
    np.testing.assert_allclose(left, right)


@settings(max_examples=40, deadline=None)
@given(finite_vectors)
def test_abs_is_relu_decomposition(x):
    """The Gemmini mapping identity: abs(x) == relu(x) + relu(-x) (Eq. 1)."""
    direct = ml.abs_(_vec(x)).data
    composed = ml.add(ml.relu(_vec(x)), ml.relu(ml.negate(_vec(x)))).data
    np.testing.assert_allclose(direct, composed)


@settings(max_examples=40, deadline=None)
@given(finite_vectors, st.floats(-100.0, 0.0), st.floats(0.0, 100.0))
def test_clip_is_relu_decomposition(x, lower, upper):
    """Clip via ReLU (Eqs. 2-3): the paper's slack-update mapping."""
    lo = np.full_like(x, lower)
    hi = np.full_like(x, upper)
    direct = ml.clip(_vec(x), _vec(lo), _vec(hi)).data
    low_clipped = ml.add(ml.relu(ml.sub(_vec(x), _vec(lo))), _vec(lo)).data
    composed = ml.add(
        ml.negate(ml.relu(ml.add(ml.negate(_vec(low_clipped)), _vec(hi)))), _vec(hi)).data
    np.testing.assert_allclose(direct, composed, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(finite_vectors)
def test_max_abs_reduce_bounds(x):
    value = ml.max_abs_reduce(_vec(x))
    assert value >= 0.0
    assert value == pytest.approx(np.max(np.abs(x)))


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 8), st.integers(1, 8))
def test_gemv_linearity(rows, cols):
    rng = np.random.default_rng(rows * 31 + cols)
    A = rng.standard_normal((rows, cols))
    x = rng.standard_normal(cols)
    y = rng.standard_normal(cols)
    lhs = ml.gemv(Mat(A, name="A"), _vec(x + y)).data
    rhs = ml.add(ml.gemv(Mat(A, name="A"), _vec(x)), ml.gemv(Mat(A, name="A"), _vec(y))).data
    np.testing.assert_allclose(lhs, rhs, atol=1e-9)
