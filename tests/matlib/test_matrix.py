"""Tests for the Mat buffer type."""

import numpy as np
import pytest

from repro.matlib import Mat, MatlibError, matrix, vector, zeros


class TestConstruction:
    def test_vector_is_1d(self):
        v = vector([1.0, 2.0], name="v")
        assert v.is_vector and not v.is_matrix
        assert v.shape == (2,)

    def test_matrix_is_2d(self):
        m = matrix([[1.0, 2.0], [3.0, 4.0]], name="m")
        assert m.is_matrix
        assert m.shape == (2, 2)

    def test_zeros(self):
        z = zeros((2, 3), name="z")
        assert z.shape == (2, 3)
        assert np.all(z.data == 0.0)

    def test_rejects_3d(self):
        with pytest.raises(MatlibError):
            Mat(np.zeros((2, 2, 2)))

    def test_integer_input_promoted_to_float(self):
        v = Mat(np.array([1, 2, 3]))
        assert v.dtype in (np.float32, np.float64)

    def test_copy_is_independent(self):
        v = vector([1.0, 2.0])
        c = v.copy()
        c[0] = 99.0
        assert v[0] == 1.0

    def test_constructor_copies_input(self):
        raw = np.array([1.0, 2.0])
        v = Mat(raw)
        raw[0] = 99.0
        assert v[0] == 1.0


class TestMutation:
    def test_assign_shape_checked(self):
        v = vector([1.0, 2.0])
        with pytest.raises(MatlibError):
            v.assign([1.0, 2.0, 3.0])

    def test_assign_in_place(self):
        v = vector([1.0, 2.0])
        v.assign([3.0, 4.0])
        np.testing.assert_allclose(v.data, [3.0, 4.0])

    def test_setitem(self):
        v = vector([1.0, 2.0])
        v[1] = 7.0
        assert v[1] == 7.0


class TestProtocols:
    def test_len_and_iteration(self):
        v = vector([1.0, 2.0, 3.0])
        assert len(v) == 3

    def test_numpy_interop(self):
        v = vector([1.0, 2.0])
        assert np.sum(v) == pytest.approx(3.0)

    def test_equality_by_value(self):
        assert vector([1.0, 2.0]) == vector([1.0, 2.0])
        assert vector([1.0, 2.0]) != vector([1.0, 3.0])

    def test_nbytes_and_size(self):
        m = zeros((4, 4))
        assert m.size == 16
        assert m.nbytes == 16 * 8
