"""Tests for matlib tracing, kernel scoping, and program dataflow analysis."""

import numpy as np
import pytest

from repro import matlib as ml
from repro.matlib import Mat, MatlibProgram, OpKind, Trace, capture_program, kernel_scope, tracing


def _small_program() -> MatlibProgram:
    def body():
        A = Mat(np.eye(3), name="A")
        x = ml.vector([1.0, 2.0, 3.0], name="x")
        with kernel_scope("stage1"):
            y = ml.gemv(A, x)
            z = ml.add(y, x)
        with kernel_scope("stage2"):
            w = ml.scale(2.0, z)
            ml.max_abs_reduce(w)
    return capture_program(body, name="small")


class TestTracing:
    def test_no_trace_by_default(self):
        assert ml.active_trace() is None
        ml.add(ml.vector([1.0]), ml.vector([2.0]))   # must not raise

    def test_records_only_inside_context(self):
        with tracing() as trace:
            ml.add(ml.vector([1.0]), ml.vector([2.0]))
        assert len(trace) == 1
        ml.add(ml.vector([1.0]), ml.vector([2.0]))
        assert len(trace) == 1

    def test_kernel_scope_tags(self):
        with tracing() as trace:
            with kernel_scope("alpha"):
                ml.add(ml.vector([1.0]), ml.vector([2.0]))
            ml.add(ml.vector([1.0]), ml.vector([2.0]))
        assert trace[0].kernel == "alpha"
        assert trace[1].kernel is None

    def test_nested_tracing_restores_previous(self):
        with tracing() as outer:
            with tracing() as inner:
                ml.add(ml.vector([1.0]), ml.vector([2.0]))
            ml.add(ml.vector([1.0]), ml.vector([2.0]))
        assert len(inner) == 1
        assert len(outer) == 1

    def test_trace_aggregation(self):
        with tracing() as trace:
            ml.gemv(Mat(np.eye(4), name="A"), ml.vector([1.0] * 4, name="x"))
            ml.add(ml.vector([1.0] * 4), ml.vector([2.0] * 4))
        assert trace.total_flops == 32 + 4
        assert trace.count(OpKind.GEMV) == 1
        assert trace.count(OpKind.ELEMENTWISE) == 1
        assert trace.count() == 2

    def test_filter_and_by_kernel(self):
        program = _small_program()
        assert set(program.trace.kernels()) == {"stage1", "stage2"}
        stage1 = program.trace.filter(kernel="stage1")
        assert all(r.kernel == "stage1" for r in stage1)
        grouped = program.trace.by_kernel()
        assert len(grouped["stage1"]) + len(grouped["stage2"]) == len(program)


class TestProgramAnalysis:
    def test_flops_by_kernel_sums_to_total(self):
        program = _small_program()
        assert sum(program.flops_by_kernel().values()) == program.total_flops

    def test_buffers_classify_inputs_and_temporaries(self):
        program = _small_program()
        buffers = program.buffers()
        assert buffers["A"].is_input
        assert buffers["x"].is_input
        temporaries = [name for name, info in buffers.items() if info.is_temporary]
        assert temporaries, "expected at least one temporary buffer"

    def test_persistent_buffers_are_read_only_inputs(self):
        program = _small_program()
        persistent = program.persistent_buffers()
        assert "A" in persistent and "x" in persistent

    def test_consumers_of_points_forward(self):
        program = _small_program()
        for index in range(len(program)):
            for consumer in program.consumers_of(index):
                assert consumer > index

    def test_fusion_candidates_are_adjacent_elementwise(self):
        program = _small_program()
        for producer, consumer in program.fusion_candidates():
            assert consumer == producer + 1
            assert program[producer].kind is OpKind.ELEMENTWISE

    def test_subprogram_restricts_kernel(self):
        program = _small_program()
        sub = program.subprogram("stage1")
        assert len(sub) > 0
        assert all(op.kernel == "stage1" for op in sub)

    def test_opreord_arithmetic_intensity(self):
        program = _small_program()
        for op in program:
            assert op.arithmetic_intensity >= 0.0
            assert op.total_bytes == op.bytes_read + op.bytes_written
