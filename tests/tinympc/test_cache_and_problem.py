"""Tests for the MPC problem definition and the pre-computed LQR cache."""

import numpy as np
import pytest

from repro.tinympc import (
    MPCProblem,
    compute_cache,
    dare,
    default_quadrotor_problem,
    riccati_recursion,
)


@pytest.fixture(scope="module")
def problem():
    return default_quadrotor_problem()


@pytest.fixture(scope="module")
def cache(problem):
    return compute_cache(problem)


def _double_integrator(dt=0.1, rho=1.0, horizon=10):
    A = np.array([[1.0, dt], [0.0, 1.0]])
    B = np.array([[0.5 * dt * dt], [dt]])
    return MPCProblem(A=A, B=B, Q=np.diag([10.0, 1.0]), R=np.array([[0.1]]),
                      rho=rho, horizon=horizon, u_min=-2.0, u_max=2.0)


class TestProblem:
    def test_default_dimensions(self, problem):
        assert problem.state_dim == 12
        assert problem.input_dim == 4
        assert problem.horizon == 10

    def test_bounds_expand_scalars(self):
        prob = _double_integrator()
        assert prob.u_min.shape == (1,)
        assert prob.u_max[0] == 2.0
        assert prob.has_input_bounds and not prob.has_state_bounds

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            _double_integrator(horizon=1)

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            _double_integrator(rho=0.0)

    def test_inconsistent_bounds_rejected(self):
        with pytest.raises(ValueError):
            MPCProblem(A=np.eye(2), B=np.eye(2), Q=np.eye(2), R=np.eye(2),
                       u_min=1.0, u_max=-1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MPCProblem(A=np.eye(3), B=np.zeros((2, 1)), Q=np.eye(3), R=np.eye(1))

    def test_augmented_costs_add_rho(self, problem):
        aug = problem.augmented_state_cost()
        np.testing.assert_allclose(aug - problem.Q,
                                   problem.rho * np.eye(problem.state_dim))

    def test_scaled_clone(self, problem):
        clone = problem.scaled(horizon=20, rho=2.0)
        assert clone.horizon == 20 and clone.rho == 2.0
        assert problem.horizon == 10


class TestDare:
    def test_dare_satisfies_riccati_equation(self):
        prob = _double_integrator()
        P, K, iterations, residual = dare(prob.A, prob.B,
                                          prob.augmented_state_cost(),
                                          prob.augmented_input_cost())
        assert residual < 1e-8
        A, B = prob.A, prob.B
        Q, R = prob.augmented_state_cost(), prob.augmented_input_cost()
        K_check = np.linalg.solve(R + B.T @ P @ B, B.T @ P @ A)
        P_check = Q + A.T @ P @ (A - B @ K_check)
        np.testing.assert_allclose(P, P_check, atol=1e-6)
        np.testing.assert_allclose(K, K_check, atol=1e-8)

    def test_dare_gain_stabilizes(self):
        prob = _double_integrator()
        _, K, _, _ = dare(prob.A, prob.B, prob.Q, prob.R)
        eigenvalues = np.linalg.eigvals(prob.A - prob.B @ K)
        assert np.max(np.abs(eigenvalues)) < 1.0


class TestCache:
    def test_cache_dimensions(self, problem, cache):
        n, m = problem.state_dim, problem.input_dim
        assert cache.Kinf.shape == (m, n)
        assert cache.Pinf.shape == (n, n)
        assert cache.Quu_inv.shape == (m, m)
        assert cache.AmBKt.shape == (n, n)

    def test_closed_loop_stable(self, problem, cache):
        closed_loop = problem.A - problem.B @ cache.Kinf
        assert np.max(np.abs(np.linalg.eigvals(closed_loop))) < 1.0

    def test_pinf_symmetric_positive_definite(self, cache):
        np.testing.assert_allclose(cache.Pinf, cache.Pinf.T, atol=1e-8)
        assert np.all(np.linalg.eigvalsh(cache.Pinf) > 0)

    def test_quu_inv_is_inverse(self, problem, cache):
        Quu = problem.augmented_input_cost() + problem.B.T @ cache.Pinf @ problem.B
        np.testing.assert_allclose(cache.Quu_inv @ Quu, np.eye(problem.input_dim),
                                   atol=1e-8)

    def test_ambkt_is_transpose_of_closed_loop(self, problem, cache):
        np.testing.assert_allclose(cache.AmBKt,
                                   (problem.A - problem.B @ cache.Kinf).T)

    def test_as_dict_has_all_matrices(self, cache):
        assert set(cache.as_dict()) == {"Kinf", "Pinf", "Quu_inv", "AmBKt"}


class TestRiccatiRecursion:
    def test_finite_horizon_converges_to_infinite(self):
        prob = _double_integrator(horizon=60)
        cache = compute_cache(prob)
        K_list, P_list = riccati_recursion(prob)
        np.testing.assert_allclose(K_list[0], cache.Kinf, atol=1e-4)
        np.testing.assert_allclose(P_list[0], cache.Pinf, rtol=1e-3)

    def test_gains_monotone_cost_to_go(self):
        prob = _double_integrator(horizon=20)
        _, P_list = riccati_recursion(prob)
        # Cost-to-go grows (in the PSD sense) as more steps remain.
        early = np.trace(P_list[0])
        late = np.trace(P_list[-1])
        assert early >= late
