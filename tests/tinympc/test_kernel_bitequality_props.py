"""Property-based bit-equality of the fast kernels vs the naive reference.

``tests/tinympc/test_hotpath_exact.py`` pins the zero-allocation kernel
rewrite to the pre-refactor implementations on the *quadrotor* problem;
this suite generalizes the contract with hypothesis: for randomized
problem shapes (state/input dimension, horizon), random stable dynamics,
and randomized workspace contents, every kernel — including the
``update_dual`` scalar path that runs through the ``input_tmp`` /
``state_tmp`` scratch — must reproduce its :mod:`repro.tinympc.naive`
counterpart bit for bit, on both the scalar and the batched workspace
layout.  The comparison is ``==`` with no tolerances: the rewrite's claim
is that only result *storage* changed, never the floating-point operation
order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tinympc import (
    BatchTinyMPCWorkspace,
    MPCProblem,
    SolverSettings,
    TinyMPCSolver,
    TinyMPCWorkspace,
    compute_cache,
    use_compiled_kernels,
    use_naive_kernels,
)
from repro.tinympc import kernels
from repro.tinympc.compiled import resolve_backend
from repro.tinympc.workspace import RESIDUAL_FIELDS, WORKSPACE_BUFFERS

# Each kernel is looked up on the module *at call time*, so running the
# same closure inside ``use_naive_kernels()`` dispatches to the swapped-in
# reference implementation — the exact mechanism the solvers use.
KERNEL_CALLS = (
    ("forward_pass", lambda ws, cache: kernels.forward_pass(ws, cache)),
    ("backward_pass", lambda ws, cache: kernels.backward_pass(ws, cache)),
    ("update_slack", lambda ws, cache: kernels.update_slack(ws)),
    ("update_dual", lambda ws, cache: kernels.update_dual(ws)),
    ("update_linear_cost",
     lambda ws, cache: kernels.update_linear_cost(ws, cache)),
    ("update_residuals", lambda ws, cache: kernels.update_residuals(ws)),
)


def make_problem(n, m, horizon, seed):
    """A random box-constrained problem with stable dynamics.

    The spectral radius is scaled to 0.95 so the infinite-horizon Riccati
    iteration inside :func:`compute_cache` converges for every draw.
    """
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    radius = float(np.max(np.abs(np.linalg.eigvals(A))))
    A *= 0.95 / max(radius, 1e-9)
    B = rng.standard_normal((n, m))
    Q = np.diag(rng.uniform(0.5, 5.0, n))
    R = np.diag(rng.uniform(0.1, 1.0, m))
    bound = rng.uniform(0.3, 1.5, m)
    return MPCProblem(A=A, B=B, Q=Q, R=R, rho=5.0, horizon=horizon,
                      u_min=-bound, u_max=bound,
                      name="prop-{}x{}x{}-{}".format(n, m, horizon, seed))


def _randomized(ws, seed):
    rng = np.random.default_rng(seed)
    for name in WORKSPACE_BUFFERS:
        array = getattr(ws, name)
        array[...] = 0.05 * rng.standard_normal(array.shape)
    return ws


def _assert_workspaces_identical(fast, reference, label):
    for name in WORKSPACE_BUFFERS:
        np.testing.assert_array_equal(
            getattr(fast, name), getattr(reference, name),
            err_msg="{}: buffer {}".format(label, name))
    for name in RESIDUAL_FIELDS:
        # The naive reduction rebinds scalar residuals to Python floats
        # where the live kernels write preallocated 0-d arrays; the
        # *values* must still be identical bits.
        np.testing.assert_array_equal(
            np.asarray(getattr(fast, name)),
            np.asarray(getattr(reference, name)),
            err_msg="{}: residual {}".format(label, name))


shapes = st.tuples(st.integers(2, 6),     # state dimension n
                   st.integers(1, 3),     # input dimension m
                   st.integers(3, 8))     # horizon N


class TestKernelBitEquality:
    @settings(max_examples=20, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 2**16))
    def test_scalar_layout(self, shape, seed):
        n, m, horizon, = shape
        problem = make_problem(n, m, horizon, seed)
        cache = compute_cache(problem)
        for label, call in KERNEL_CALLS:
            fast = _randomized(TinyMPCWorkspace(problem), seed + 1)
            reference = _randomized(TinyMPCWorkspace(problem), seed + 1)
            call(fast, cache)
            with use_naive_kernels():
                call(reference, cache)
            _assert_workspaces_identical(fast, reference, label)

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 2**16),
           batch=st.integers(1, 4))
    def test_batch_layout(self, shape, seed, batch):
        n, m, horizon = shape
        problem = make_problem(n, m, horizon, seed)
        cache = compute_cache(problem)
        for label, call in KERNEL_CALLS:
            fast = _randomized(BatchTinyMPCWorkspace(problem, batch=batch),
                               seed + 2)
            reference = _randomized(
                BatchTinyMPCWorkspace(problem, batch=batch), seed + 2)
            call(fast, cache)
            with use_naive_kernels():
                call(reference, cache)
            _assert_workspaces_identical(fast, reference,
                                         "{} (batch={})".format(label, batch))

    @settings(max_examples=10, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 2**16))
    def test_full_solve_bit_equality(self, shape, seed):
        """End to end: a warm-started solve sequence on a random problem
        matches the naive-kernel solver exactly, iterations included."""
        n, m, horizon = shape
        problem = make_problem(n, m, horizon, seed)
        settings_ = SolverSettings(max_iterations=15)
        fast = TinyMPCSolver(problem, settings_)
        reference = TinyMPCSolver(problem, settings_)
        rng = np.random.default_rng(seed + 3)
        goal = np.zeros(n)
        for _ in range(2):
            x0 = 0.2 * rng.standard_normal(n)
            fast_solution = fast.solve(x0, Xref=goal)
            with use_naive_kernels():
                reference_solution = reference.solve(x0, Xref=goal)
            assert fast_solution.iterations == reference_solution.iterations
            assert fast_solution.converged == reference_solution.converged
            np.testing.assert_array_equal(fast_solution.states,
                                          reference_solution.states)
            np.testing.assert_array_equal(fast_solution.inputs,
                                          reference_solution.inputs)

    def test_update_dual_uses_scratch_not_fresh_arrays(self):
        """The named satellite: the fast ``update_dual`` must route its
        differences through the preallocated scratch buffers (the naive
        form allocates per call), while producing identical bits."""
        problem = make_problem(4, 2, 5, seed=7)
        ws = _randomized(TinyMPCWorkspace(problem), 11)
        scratch = ws.scratch
        input_tmp, state_tmp = scratch.input_tmp, scratch.state_tmp
        expected_y = ws.y + (ws.u - ws.znew)
        expected_g = ws.g + (ws.x - ws.vnew)
        kernels.update_dual(ws)
        np.testing.assert_array_equal(ws.y, expected_y)
        np.testing.assert_array_equal(ws.g, expected_g)
        # The scratch arrays hold the last differences — proof the kernel
        # wrote through them rather than allocating temporaries.
        np.testing.assert_array_equal(input_tmp, ws.u - ws.znew)
        np.testing.assert_array_equal(state_tmp, ws.x - ws.vnew)


# ---------------------------------------------------------------------------
# Compiled backends vs the numpy fast path
# ---------------------------------------------------------------------------

# The compiled backends are shape-specialized (the C backend builds one
# shared library per (n, m, N)), so the sweep runs hypothesis over *data*
# (seeds drive the dynamics, costs, and workspace contents) on a FIXED
# shape list — a full hypothesis shape sweep would trigger an unbounded
# number of compiles.  The list spans the corner shapes: minimum dims,
# m == 1 (degenerate GEMV), mid-size, and the quadrotor shape the backends
# pre-build.
COMPILED_SHAPES = ((2, 1, 3), (4, 2, 5), (6, 3, 8), (12, 4, 10))

# Tolerance policy (documented contract, see docs/perf.md): elementwise and
# reduction kernels are bit-for-bit — their per-element operation order is
# identical to numpy's.  Matvec-based kernels accumulate in axpy order,
# which per-lane matches a sequential dot product but not necessarily
# BLAS's blocking, so they carry a float64 relative tolerance instead.
EXACT_COMPILED_KERNELS = frozenset(
    ["update_slack", "update_dual", "update_residuals"])
COMPILED_F64_RTOL = 1e-11
COMPILED_F64_ATOL = 1e-13
# float32 mode narrows state per call and widens results; one iteration of
# single-precision arithmetic against the float64 reference.
COMPILED_F32_RTOL = 1e-3
COMPILED_F32_ATOL = 1e-5


def _compiled_backend_or_skip(name="auto"):
    impl, resolved = resolve_backend(name)
    if impl is None:
        pytest.skip("no compiled kernel backend available")
    return impl, resolved


def _assert_compiled_close(fast, reference, label, rtol, atol, exact):
    for name in WORKSPACE_BUFFERS:
        a, b = getattr(fast, name), getattr(reference, name)
        if exact:
            np.testing.assert_array_equal(
                a, b, err_msg="{}: buffer {}".format(label, name))
        else:
            np.testing.assert_allclose(
                a, b, rtol=rtol, atol=atol,
                err_msg="{}: buffer {}".format(label, name))
    for name in RESIDUAL_FIELDS:
        a = np.asarray(getattr(fast, name))
        b = np.asarray(getattr(reference, name))
        if exact:
            np.testing.assert_array_equal(
                a, b, err_msg="{}: residual {}".format(label, name))
        else:
            np.testing.assert_allclose(
                a, b, rtol=rtol, atol=atol,
                err_msg="{}: residual {}".format(label, name))


class TestCompiledBackendEquivalence:
    @pytest.mark.parametrize("batch", [None, 3])
    @pytest.mark.parametrize("shape", COMPILED_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_kernels_match_numpy_fast_path(self, shape, batch, seed):
        """Per-kernel: the compiled backend reproduces the numpy fast path
        under the documented tolerance policy, scalar and batched."""
        impl, resolved = _compiled_backend_or_skip()
        n, m, horizon = shape
        problem = make_problem(n, m, horizon, seed)
        cache = compute_cache(problem)

        def build(seed_offset=4):
            ws = (TinyMPCWorkspace(problem) if batch is None
                  else BatchTinyMPCWorkspace(problem, batch=batch))
            return _randomized(ws, seed + seed_offset)

        for label, call in KERNEL_CALLS:
            fast, reference = build(), build()
            with use_compiled_kernels(resolved):
                call(fast, cache)
            call(reference, cache)
            _assert_compiled_close(
                fast, reference, "{} [{}]".format(label, resolved),
                COMPILED_F64_RTOL, COMPILED_F64_ATOL,
                exact=label in EXACT_COMPILED_KERNELS)

    @pytest.mark.parametrize("shape", COMPILED_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_fused_iteration_matches_numpy_fast_path(self, shape, seed):
        """The fused full iteration (the call the solvers actually make)
        stays within the matvec tolerance end to end."""
        impl, resolved = _compiled_backend_or_skip()
        n, m, horizon = shape
        problem = make_problem(n, m, horizon, seed)
        cache = compute_cache(problem)
        fast = _randomized(TinyMPCWorkspace(problem), seed + 5)
        reference = _randomized(TinyMPCWorkspace(problem), seed + 5)
        with use_compiled_kernels(resolved):
            for _ in range(3):
                kernels.admm_iteration(fast, cache)
        for _ in range(3):
            kernels.admm_iteration(reference, cache)
        _assert_compiled_close(
            fast, reference, "admm_iteration [{}]".format(resolved),
            # Three chained iterations compound the per-matvec differences.
            rtol=1e-9, atol=1e-11, exact=False)

    @pytest.mark.parametrize("shape", COMPILED_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_float32_mode_tracks_float64(self, shape, seed):
        """Opt-in float32 compute stays within single-precision distance of
        the float64 numpy fast path (and leaves storage float64)."""
        impl, resolved = _compiled_backend_or_skip()
        if not getattr(impl, "supports_float32", False):
            pytest.skip("{} backend has no float32 mode".format(resolved))
        n, m, horizon = shape
        problem = make_problem(n, m, horizon, seed)
        cache = compute_cache(problem)
        fast = _randomized(TinyMPCWorkspace(problem), seed + 6)
        reference = _randomized(TinyMPCWorkspace(problem), seed + 6)
        fast.compute_dtype = "float32"
        with use_compiled_kernels(resolved):
            kernels.admm_iteration(fast, cache)
        kernels.admm_iteration(reference, cache)
        assert fast.x.dtype == np.float64  # storage stays canonical
        _assert_compiled_close(
            fast, reference, "admm_iteration f32 [{}]".format(resolved),
            COMPILED_F32_RTOL, COMPILED_F32_ATOL, exact=False)
