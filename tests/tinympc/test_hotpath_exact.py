"""Bit-for-bit contracts of the zero-allocation solve hot path.

The kernel rewrite (scratch arenas, ``out=`` stores, pre-negated operands,
runtime-verified fusion) claims to preserve the pre-refactor floating-point
operation order exactly.  These tests hold it to ``==`` — no tolerances —
against the retained reference implementations in
:mod:`repro.tinympc.naive`, across full solves, warm-start sequences, and
both workspace layouts, plus the satellite contracts: symmetric scalar /
batch residual storage and ``check_termination_every > 1`` parity.
"""

import numpy as np
import pytest

from repro.tinympc import (
    BatchTinyMPCSolver,
    BatchTinyMPCWorkspace,
    SolverSettings,
    TinyMPCSolver,
    TinyMPCWorkspace,
    compute_cache,
    default_quadrotor_problem,
    use_naive_kernels,
)
from repro.tinympc.kernels import compute_residuals, update_residuals
from repro.tinympc.workspace import RESIDUAL_FIELDS, WORKSPACE_BUFFERS


@pytest.fixture(scope="module")
def problem():
    return default_quadrotor_problem()


@pytest.fixture(scope="module")
def cache(problem):
    return compute_cache(problem)


def _random_states(count, dim, seed, scale=0.2):
    rng = np.random.default_rng(seed)
    return scale * rng.standard_normal((count, dim))


def _randomized(ws, seed):
    rng = np.random.default_rng(seed)
    for name in WORKSPACE_BUFFERS:
        array = getattr(ws, name)
        array[...] = 0.05 * rng.standard_normal(array.shape)
    return ws


class TestExactSolveEquivalence:
    """Refactored solve == pre-refactor reference trajectories, exactly."""

    def test_scalar_warm_start_sequence_exact(self, problem):
        fast = TinyMPCSolver(problem, SolverSettings(max_iterations=30))
        reference = TinyMPCSolver(problem, SolverSettings(max_iterations=30))
        states = _random_states(5, problem.state_dim, seed=1)
        goal = np.zeros(problem.state_dim)
        for x0 in states:
            fast_solution = fast.solve(x0, Xref=goal)
            with use_naive_kernels():
                reference_solution = reference.solve(x0, Xref=goal)
            assert fast_solution.iterations == reference_solution.iterations
            assert fast_solution.converged == reference_solution.converged
            np.testing.assert_array_equal(fast_solution.states,
                                          reference_solution.states)
            np.testing.assert_array_equal(fast_solution.inputs,
                                          reference_solution.inputs)
            assert fast_solution.residuals == reference_solution.residuals

    def test_batch_warm_start_sequence_exact(self, problem):
        batch_size = 12
        fast = BatchTinyMPCSolver(problem, batch_size,
                                  SolverSettings(max_iterations=30))
        reference = BatchTinyMPCSolver(problem, batch_size,
                                       SolverSettings(max_iterations=30))
        goal = np.zeros(problem.state_dim)
        for step in range(4):
            x0s = _random_states(batch_size, problem.state_dim, seed=10 + step)
            fast_solution = fast.solve(x0s, Xref=goal)
            with use_naive_kernels():
                reference_solution = reference.solve(x0s, Xref=goal)
            np.testing.assert_array_equal(fast_solution.iterations,
                                          reference_solution.iterations)
            np.testing.assert_array_equal(fast_solution.states,
                                          reference_solution.states)
            np.testing.assert_array_equal(fast_solution.inputs,
                                          reference_solution.inputs)
            for name in RESIDUAL_FIELDS:
                np.testing.assert_array_equal(
                    fast_solution.residuals[name],
                    reference_solution.residuals[name], err_msg=name)

    def test_masked_batch_solve_exact(self, problem):
        batch_size = 6
        fast = BatchTinyMPCSolver(problem, batch_size,
                                  SolverSettings(max_iterations=20))
        reference = BatchTinyMPCSolver(problem, batch_size,
                                       SolverSettings(max_iterations=20))
        x0s = _random_states(batch_size, problem.state_dim, seed=3)
        goal = np.zeros(problem.state_dim)
        fast.solve(x0s, Xref=goal)
        with use_naive_kernels():
            reference.solve(x0s, Xref=goal)
        mask = np.array([True, False, True, False, True, False])
        fast_solution = fast.solve(1.5 * x0s, Xref=goal, active=mask)
        with use_naive_kernels():
            reference_solution = reference.solve(1.5 * x0s, Xref=goal,
                                                 active=mask)
        np.testing.assert_array_equal(fast_solution.inputs,
                                      reference_solution.inputs)
        np.testing.assert_array_equal(fast_solution.iterations,
                                      reference_solution.iterations)


class TestResidualStorageSymmetry:
    """Scalar and batched residuals share one scratch-based reduction."""

    def test_scalar_fields_are_zero_d_arrays(self, problem, cache):
        ws = _randomized(TinyMPCWorkspace(problem), 7)
        update_residuals(ws)
        for name in RESIDUAL_FIELDS:
            value = getattr(ws, name)
            assert isinstance(value, np.ndarray) and value.shape == (), name

    def test_batch_fields_are_b_arrays(self, problem, cache):
        ws = _randomized(BatchTinyMPCWorkspace(problem, batch=3), 7)
        update_residuals(ws)
        for name in RESIDUAL_FIELDS:
            value = getattr(ws, name)
            assert isinstance(value, np.ndarray) and value.shape == (3,), name

    def test_scalar_and_batch_of_one_residuals_agree_exactly(self, problem,
                                                             cache):
        """The satellite regression: identical content -> identical bits."""
        scalar = _randomized(TinyMPCWorkspace(problem), 21)
        batched = BatchTinyMPCWorkspace(problem, batch=1)
        for name in WORKSPACE_BUFFERS:
            getattr(batched, name)[0] = getattr(scalar, name)
        scalar_residuals = compute_residuals(scalar)
        batched_residuals = compute_residuals(batched)
        for name in RESIDUAL_FIELDS:
            assert scalar_residuals[name] == float(batched_residuals[name][0]), name

    def test_solution_residuals_detached_from_scratch(self, problem):
        """A returned solution must not see the next solve's residuals."""
        solver = TinyMPCSolver(problem, SolverSettings(max_iterations=10))
        first = solver.solve(np.full(problem.state_dim, 0.1))
        saved = dict(first.residuals)
        solver.solve(np.full(problem.state_dim, 0.7))
        assert first.residuals == saved

    def test_compute_residuals_returns_detached_batch_arrays(self, problem,
                                                             cache):
        """compute_residuals snapshots must survive further iterations
        (pre-refactor behavior: every call produced fresh arrays)."""
        ws = _randomized(BatchTinyMPCWorkspace(problem, batch=3), 33)
        snapshot = compute_residuals(ws)
        saved = {name: value.copy() for name, value in snapshot.items()}
        ws.x += 1.0
        update_residuals(ws)
        for name in RESIDUAL_FIELDS:
            np.testing.assert_array_equal(snapshot[name], saved[name],
                                          err_msg=name)


class TestCheckTerminationEvery:
    """Satellite coverage: cadence > 1 was previously untested."""

    @pytest.mark.parametrize("every", [2, 3])
    def test_scalar_batch_parity(self, problem, every):
        batch_size = 8
        settings = SolverSettings(max_iterations=25,
                                  check_termination_every=every)
        scalars = [TinyMPCSolver(problem, SolverSettings(
            max_iterations=25, check_termination_every=every))
            for _ in range(batch_size)]
        batch = BatchTinyMPCSolver(problem, batch_size, settings)
        goal = np.zeros(problem.state_dim)
        for step in range(3):
            x0s = _random_states(batch_size, problem.state_dim,
                                 seed=40 + step)
            scalar_solutions = [scalars[b].solve(x0s[b], Xref=goal)
                                for b in range(batch_size)]
            batched = batch.solve(x0s, Xref=goal)
            assert np.array_equal(batched.iterations,
                                  [s.iterations for s in scalar_solutions])
            assert np.array_equal(batched.converged,
                                  [s.converged for s in scalar_solutions])
            np.testing.assert_allclose(
                batched.inputs,
                np.stack([s.inputs for s in scalar_solutions]),
                rtol=1e-10, atol=1e-13)

    @pytest.mark.parametrize("every", [2, 5])
    def test_iterations_are_multiples_of_cadence_when_converged(self, problem,
                                                                every):
        solver = TinyMPCSolver(problem, SolverSettings(
            max_iterations=40, check_termination_every=every,
            abs_primal_tolerance=1e-3, abs_dual_tolerance=1e-3))
        solution = solver.solve(np.full(problem.state_dim, 0.05),
                                Xref=np.zeros(problem.state_dim))
        if solution.converged:
            assert solution.iterations % every == 0


class TestCachedOperators:
    """The precomputed hot-path operators must mirror their sources."""

    def test_problem_operators(self, problem):
        # Zero-copy views of the as-stored dynamics (numpy may collapse the
        # view chain, so assert shared memory rather than a specific base).
        assert np.shares_memory(problem.AT, problem.A)
        assert np.shares_memory(problem.BT, problem.B)
        np.testing.assert_array_equal(problem.AT, problem.A.T)
        np.testing.assert_array_equal(problem.BT, problem.B.T)
        np.testing.assert_array_equal(problem.neg_Q, -problem.Q)
        np.testing.assert_array_equal(problem.neg_R, -problem.R)

    def test_cache_operators(self, cache):
        np.testing.assert_array_equal(cache.KinfT, cache.Kinf.T)
        np.testing.assert_array_equal(cache.Quu_invT, cache.Quu_inv.T)
        np.testing.assert_array_equal(cache.AmBKtT, cache.AmBKt.T)
        np.testing.assert_array_equal(cache.neg_KinfT, -(cache.Kinf.T))
        np.testing.assert_array_equal(cache.neg_Pinf, -cache.Pinf)
        # Same memory layout as the views main built per call — the
        # bit-for-bit precondition.
        assert cache.KinfT.base is cache.Kinf
        assert cache.neg_KinfT.strides == cache.Kinf.T.strides

    def test_problem_hash_memoized(self, problem):
        from repro.tinympc import problem_hash
        first = problem_hash(problem)
        assert problem_hash(problem) == first
        assert getattr(problem, "_hash_memo") == first
