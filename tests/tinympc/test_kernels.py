"""Tests for the TinyMPC kernels: fast/traced equivalence and FLOP accounting."""

import numpy as np
import pytest

from repro.matlib import OpKind
from repro.tinympc import (
    ALL_KERNELS,
    ELEMENTWISE_KERNELS,
    ITERATIVE_KERNELS,
    KERNEL_CLASSES,
    REDUCTION_KERNELS,
    build_iteration_program,
    compute_cache,
    default_quadrotor_problem,
    kernel_flop_breakdown,
)
from repro.tinympc.kernels import (
    backward_pass,
    compute_residuals,
    forward_pass,
    run_traced_iteration,
    update_dual,
    update_linear_cost,
    update_slack,
)
from repro.tinympc.workspace import TinyMPCWorkspace


@pytest.fixture(scope="module")
def problem():
    return default_quadrotor_problem()


@pytest.fixture(scope="module")
def cache(problem):
    return compute_cache(problem)


def _randomized_workspace(problem, seed=0):
    rng = np.random.default_rng(seed)
    ws = TinyMPCWorkspace(problem)
    ws.x[...] = 0.1 * rng.standard_normal(ws.x.shape)
    ws.u[...] = 0.01 * rng.standard_normal(ws.u.shape)
    ws.y[...] = 0.01 * rng.standard_normal(ws.y.shape)
    ws.g[...] = 0.01 * rng.standard_normal(ws.g.shape)
    ws.p[...] = 0.05 * rng.standard_normal(ws.p.shape)
    ws.r[...] = 0.01 * rng.standard_normal(ws.r.shape)
    ws.q[...] = 0.05 * rng.standard_normal(ws.q.shape)
    ws.Xref[...] = 0.1 * rng.standard_normal(ws.Xref.shape)
    return ws


class TestKernelRegistry:
    def test_all_kernels_classified(self):
        assert set(ALL_KERNELS) == set(KERNEL_CLASSES)
        assert set(ITERATIVE_KERNELS) | set(ELEMENTWISE_KERNELS) | set(REDUCTION_KERNELS) \
            == set(ALL_KERNELS)

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_kernel_class_is_valid(self, kernel):
        assert KERNEL_CLASSES[kernel] in ("iterative", "elementwise", "reduction")


class TestFastTracedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_one_iteration_matches(self, problem, cache, seed):
        ws_fast = _randomized_workspace(problem, seed)
        ws_traced = _randomized_workspace(problem, seed)
        forward_pass(ws_fast, cache)
        update_slack(ws_fast)
        update_dual(ws_fast)
        update_linear_cost(ws_fast, cache)
        compute_residuals(ws_fast)
        backward_pass(ws_fast, cache)
        run_traced_iteration(ws_traced, cache)
        for name in ("x", "u", "p", "d", "q", "r", "znew", "vnew", "y", "g"):
            np.testing.assert_allclose(getattr(ws_fast, name),
                                       getattr(ws_traced, name), atol=1e-9,
                                       err_msg="mismatch in {}".format(name))
        for key, value in ws_fast.residuals().items():
            assert getattr(ws_traced, key) == pytest.approx(value, abs=1e-9)

    def test_slack_projection_respects_bounds(self, problem, cache):
        ws = _randomized_workspace(problem, 3)
        ws.u[...] = 10.0   # force saturation
        update_slack(ws)
        assert np.all(ws.znew <= problem.u_max + 1e-12)
        assert np.all(ws.znew >= problem.u_min - 1e-12)


class TestIterationProgram:
    def test_program_covers_every_kernel(self, problem):
        program = build_iteration_program(problem)
        assert set(program.kernels()) == set(ALL_KERNELS)

    def test_program_flops_positive_everywhere(self, problem):
        breakdown = kernel_flop_breakdown(problem)
        for kernel in ALL_KERNELS:
            assert breakdown[kernel] > 0, kernel

    def test_iterative_kernels_dominate_flops(self, problem):
        """Figure 1's key shape: the GEMV-heavy iterative passes dominate."""
        breakdown = kernel_flop_breakdown(problem)
        iterative = sum(breakdown[k] for k in ITERATIVE_KERNELS)
        total = sum(breakdown.values())
        assert iterative / total > 0.5

    def test_program_scales_with_horizon(self, problem):
        short = build_iteration_program(problem.scaled(horizon=5))
        long = build_iteration_program(problem.scaled(horizon=20))
        assert long.total_flops > short.total_flops

    def test_elementwise_ops_are_whole_horizon(self, problem):
        """The slack/dual kernels operate on stacked full-horizon tensors."""
        program = build_iteration_program(problem)
        slack_ops = [op for op in program if op.kernel == "update_slack_2"
                     and op.kind is OpKind.ELEMENTWISE]
        assert slack_ops
        n_total = problem.horizon * problem.state_dim
        assert max(op.output_elements for op in slack_ops) == n_total

    def test_reductions_are_global(self, problem):
        program = build_iteration_program(problem)
        reductions = [op for op in program if op.kernel in REDUCTION_KERNELS]
        assert reductions
        assert all(op.kind is OpKind.REDUCTION for op in reductions)
        assert len(reductions) == len(REDUCTION_KERNELS)
