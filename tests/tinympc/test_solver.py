"""Tests for the TinyMPC ADMM solver: convergence, constraints, warm starting."""

import numpy as np
import pytest

from repro.tinympc import (
    MPCProblem,
    SolverSettings,
    TinyMPCSolver,
    condensed_qp_solution,
    default_quadrotor_problem,
    lqr_tracking_solution,
    rollout,
)


def _double_integrator(horizon=15, u_limit=2.0, rho=1.0):
    dt = 0.1
    A = np.array([[1.0, dt], [0.0, 1.0]])
    B = np.array([[0.5 * dt * dt], [dt]])
    return MPCProblem(A=A, B=B, Q=np.diag([10.0, 1.0]), R=np.array([[0.1]]),
                      rho=rho, horizon=horizon, u_min=-u_limit, u_max=u_limit)


@pytest.fixture(scope="module")
def quadrotor_problem():
    return default_quadrotor_problem()


class TestUnconstrainedAccuracy:
    def test_matches_lqr_when_constraints_inactive(self):
        # A long horizon is used so that TinyMPC's infinite-horizon terminal
        # cost and the finite-horizon LQR reference agree.
        problem = _double_integrator(horizon=50, u_limit=50.0)
        solver = TinyMPCSolver(problem, SolverSettings(
            max_iterations=500, abs_primal_tolerance=1e-8,
            abs_dual_tolerance=1e-8, warm_start=False))
        x0 = np.array([0.3, 0.0])
        goal = np.zeros(2)
        solution = solver.solve(x0, goal)
        reference = lqr_tracking_solution(problem, x0, goal)
        assert solution.converged
        np.testing.assert_allclose(solution.inputs, reference.inputs, atol=5e-3)
        np.testing.assert_allclose(solution.states, reference.states, atol=5e-3)

    def test_quadrotor_unconstrained_accuracy(self, quadrotor_problem):
        solver = TinyMPCSolver(quadrotor_problem, SolverSettings(
            max_iterations=500, abs_primal_tolerance=1e-7,
            abs_dual_tolerance=1e-7, warm_start=False))
        x0 = np.zeros(12)
        x0[0] = 0.02
        solution = solver.solve(x0, np.zeros(12))
        reference = lqr_tracking_solution(quadrotor_problem, x0, np.zeros(12))
        assert solution.converged
        np.testing.assert_allclose(solution.inputs, reference.inputs, atol=5e-3)


class TestConstrainedAccuracy:
    def test_respects_input_bounds(self):
        problem = _double_integrator(u_limit=0.5)
        solver = TinyMPCSolver(problem, SolverSettings(max_iterations=200))
        solution = solver.solve(np.array([2.0, 0.0]), np.zeros(2))
        assert np.all(solution.inputs <= problem.u_max + 1e-9)
        assert np.all(solution.inputs >= problem.u_min - 1e-9)

    def test_matches_condensed_qp_reference(self):
        problem = _double_integrator(horizon=8, u_limit=0.4)
        solver = TinyMPCSolver(problem, SolverSettings(
            max_iterations=800, abs_primal_tolerance=1e-7,
            abs_dual_tolerance=1e-7, warm_start=False))
        x0 = np.array([1.0, 0.0])
        goal = np.zeros(2)
        solution = solver.solve(x0, goal)
        reference = condensed_qp_solution(problem, x0, goal, iterations=6000)
        # Compare achieved objective values (trajectories may differ slightly
        # because TinyMPC optimizes the rho-augmented objective).
        def objective(inputs):
            states = rollout(problem, x0, inputs)
            cost = 0.0
            for i in range(problem.horizon - 1):
                cost += 0.5 * states[i] @ problem.Q @ states[i]
                cost += 0.5 * inputs[i] @ problem.R @ inputs[i]
            cost += 0.5 * states[-1] @ problem.Q @ states[-1]
            return cost
        assert objective(solution.inputs) <= 1.1 * objective(reference.inputs) + 1e-6

    def test_saturated_start_still_converges_toward_goal(self, quadrotor_problem):
        solver = TinyMPCSolver(quadrotor_problem, SolverSettings(max_iterations=50))
        x0 = np.zeros(12)
        x0[0:3] = [0.5, -0.5, 0.3]
        solution = solver.solve(x0, np.zeros(12))
        # The planned trajectory should move the position toward the origin.
        assert np.linalg.norm(solution.states[-1][0:3]) < np.linalg.norm(x0[0:3])


class TestWarmStarting:
    def test_warm_start_reduces_iterations(self, quadrotor_problem):
        settings = SolverSettings(max_iterations=100, warm_start=True,
                                  abs_primal_tolerance=1e-4, abs_dual_tolerance=1e-4)
        solver = TinyMPCSolver(quadrotor_problem, settings)
        x0 = np.zeros(12)
        x0[0] = 0.2
        first = solver.solve(x0, np.zeros(12))
        second = solver.solve(x0 * 0.98, np.zeros(12))
        assert not first.warm_started
        assert second.warm_started
        assert second.iterations <= first.iterations

    def test_reset_clears_warm_start(self, quadrotor_problem):
        solver = TinyMPCSolver(quadrotor_problem)
        solver.solve(np.zeros(12), np.zeros(12))
        solver.reset()
        solution = solver.solve(np.zeros(12), np.zeros(12))
        assert not solution.warm_started

    def test_solver_statistics_accumulate(self, quadrotor_problem):
        solver = TinyMPCSolver(quadrotor_problem, SolverSettings(max_iterations=5))
        for _ in range(3):
            solver.solve(np.zeros(12), np.zeros(12))
        assert solver.total_solves == 3
        assert solver.average_iterations > 0

    def test_reset_clears_dual_state(self, quadrotor_problem):
        """reset() must zero the dual/slack iterates, not just the flag."""
        solver = TinyMPCSolver(quadrotor_problem, SolverSettings(max_iterations=30))
        x0 = np.zeros(12)
        x0[0:3] = [0.4, -0.3, 0.2]
        solver.solve(x0, np.zeros(12))
        ws = solver.workspace
        assert np.any(ws.y) or np.any(ws.g)   # duals moved during the solve
        solver.reset()
        for name in ("v", "vnew", "z", "znew", "g", "y"):
            assert not np.any(getattr(ws, name)), name

    def test_warm_start_reuses_iterates_on_moving_reference(self, quadrotor_problem):
        """A slowly-moving reference keeps warm solves cheaper than cold ones."""
        settings = SolverSettings(max_iterations=100, warm_start=True,
                                  abs_primal_tolerance=1e-4,
                                  abs_dual_tolerance=1e-4)
        warm_solver = TinyMPCSolver(quadrotor_problem, settings)
        cold_solver = TinyMPCSolver(quadrotor_problem, SolverSettings(
            max_iterations=100, warm_start=False,
            abs_primal_tolerance=1e-4, abs_dual_tolerance=1e-4))
        x0 = np.zeros(12)
        x0[0] = 0.3
        goal = np.zeros(12)
        warm_iterations = []
        cold_iterations = []
        for step in range(5):
            goal[0] = 0.01 * step        # reference creeps along x
            warm_iterations.append(warm_solver.solve(x0, goal).iterations)
            cold_iterations.append(cold_solver.solve(x0, goal).iterations)
        # After the first (cold) solve, warm solves reuse the previous
        # iterates and need strictly fewer iterations than cold restarts.
        assert sum(warm_iterations[1:]) < sum(cold_iterations[1:])
        # The carried iterates really are reused: the cost-to-go gradient p
        # is non-zero going into the next warm solve (a cold start zeroes it).
        assert np.any(warm_solver.workspace.p)


class TestInputClipping:
    def test_workspace_matches_returned_inputs(self, quadrotor_problem):
        """After solve() the warm-start workspace carries exactly the clipped
        inputs the solution reports (the documented consistency contract)."""
        solver = TinyMPCSolver(quadrotor_problem, SolverSettings(max_iterations=5))
        x0 = np.zeros(12)
        x0[0:3] = [1.5, -1.5, 0.8]      # large offset forces saturation
        solution = solver.solve(x0, np.zeros(12))
        np.testing.assert_array_equal(solver.workspace.u, solution.inputs)
        assert np.all(solver.workspace.u <= quadrotor_problem.u_max + 1e-12)
        assert np.all(solver.workspace.u >= quadrotor_problem.u_min - 1e-12)


class TestSolutionObject:
    def test_control_is_first_input(self, quadrotor_problem):
        solver = TinyMPCSolver(quadrotor_problem, SolverSettings(max_iterations=10))
        solution = solver.solve(np.zeros(12), np.zeros(12))
        np.testing.assert_allclose(solution.control, solution.inputs[0])
        assert solution.iterations >= 1
        assert set(solution.residuals) == {
            "primal_residual_state", "dual_residual_state",
            "primal_residual_input", "dual_residual_input"}

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            SolverSettings(max_iterations=0)
        with pytest.raises(ValueError):
            SolverSettings(check_termination_every=0)
