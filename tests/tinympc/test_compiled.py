"""Compiled kernel backend: selection, fallback, and solve equivalence.

The backend contract has three layers, each tested here:

* **selection** — ``resolve_backend`` / ``use_compiled_kernels`` install a
  compiled kernel set through the same module-attr seam the naive swap
  uses, restore cleanly, never raise on an unavailable backend, and honor
  ``REPRO_KERNEL_BACKEND`` at import (checked in a subprocess with numba
  import-blocked, proving the no-toolchain fallback really lands on the
  numpy kernels with identical solves);
* **solve equivalence** — scalar and batched solvers under a compiled
  backend reproduce the numpy fast path's *discrete* outcomes exactly
  (iteration counts, convergence flags) with trajectories inside the
  documented matvec tolerance, and ``SolverSettings(dtype="float32")`` is
  accepted only when the active backend can honor it;
* **fleet integration** — a disturbance-recovery campaign run under a
  compiled backend reproduces the numpy campaign's discrete outcomes
  (recovered flags, recovery times) episode for episode, and the solver
  pool never hands a workspace across a backend switch.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.tinympc import (
    SolverSettings,
    TinyMPCSolver,
    BatchTinyMPCSolver,
    active_backend,
    available_backends,
    default_quadrotor_problem,
    kernel_backend_info,
    use_compiled_kernels,
    use_naive_kernels,
)
from repro.tinympc import kernels
from repro.tinympc.compiled import (
    _DISPATCH_ATTRS,
    active_supports_float32,
    resolve_backend,
)

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

_COMPILED_IMPL, _COMPILED_NAME = resolve_backend("auto")

needs_compiled = pytest.mark.skipif(
    _COMPILED_IMPL is None, reason="no compiled kernel backend available")
needs_float32 = pytest.mark.skipif(
    _COMPILED_IMPL is None
    or not getattr(_COMPILED_IMPL, "supports_float32", False),
    reason="no float32-capable compiled backend available")


# ---------------------------------------------------------------------------
# Selection and fallback
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_numpy_is_the_default_and_always_available(self):
        assert active_backend() == "numpy"
        info = available_backends()
        assert info["numpy"] == "always available"
        assert set(info) == {"numpy", "numba", "c"}

    def test_unknown_backend_falls_back_to_numpy(self):
        impl, resolved = resolve_backend("fortran77")
        assert impl is None and resolved == "numpy"
        with use_compiled_kernels("fortran77") as name:
            assert name == "numpy"
            assert active_backend() == "numpy"

    def test_context_restores_dispatch_attrs(self):
        before = {attr: getattr(kernels, attr) for attr in _DISPATCH_ATTRS}
        with use_compiled_kernels("auto"):
            pass
        after = {attr: getattr(kernels, attr) for attr in _DISPATCH_ATTRS}
        assert before == after
        assert active_backend() == "numpy"

    @needs_compiled
    def test_compiled_backend_installs_and_reports(self):
        with use_compiled_kernels(_COMPILED_NAME) as name:
            assert name == _COMPILED_NAME
            assert active_backend() == _COMPILED_NAME
            info = kernel_backend_info()
            assert info["name"] == _COMPILED_NAME
            assert isinstance(info["threads"], int) and info["threads"] >= 1
            assert isinstance(info["supports_float32"], bool)
        assert active_backend() == "numpy"

    @needs_compiled
    def test_naive_swap_neutralizes_compiled_backend(self):
        """``use_naive_kernels`` inside a compiled context must route every
        dispatch attr back through the reference path — the bit-equality
        harness depends on the naive side being genuinely naive."""
        with use_compiled_kernels(_COMPILED_NAME):
            with use_naive_kernels():
                assert kernels.iteration_prelude is not None
                from repro.tinympc import naive
                assert kernels.forward_pass is naive.forward_pass_naive
            # Compiled dispatch restored after the naive block.
            assert kernels.forward_pass is not None
            assert active_backend() == _COMPILED_NAME


# ---------------------------------------------------------------------------
# Solver equivalence
# ---------------------------------------------------------------------------

def _solve_sequence(solver, x0s, goal):
    return [solver.solve(x0, Xref=goal) for x0 in x0s]


@needs_compiled
class TestSolverEquivalence:
    def test_scalar_solver_discrete_outcomes_match(self):
        problem = default_quadrotor_problem()
        settings = SolverSettings(max_iterations=30)
        rng = np.random.default_rng(42)
        goal = np.zeros(problem.state_dim)
        x0s = [0.2 * rng.standard_normal(problem.state_dim)
               for _ in range(5)]
        reference = _solve_sequence(TinyMPCSolver(problem, settings), x0s,
                                    goal)
        with use_compiled_kernels(_COMPILED_NAME):
            compiled_sols = _solve_sequence(TinyMPCSolver(problem, settings),
                                            x0s, goal)
        for ref, com in zip(reference, compiled_sols):
            assert com.iterations == ref.iterations
            assert com.converged == ref.converged
            np.testing.assert_allclose(com.states, ref.states,
                                       rtol=1e-9, atol=1e-11)
            np.testing.assert_allclose(com.inputs, ref.inputs,
                                       rtol=1e-9, atol=1e-11)

    def test_batch_solver_discrete_outcomes_match(self):
        problem = default_quadrotor_problem()
        settings = SolverSettings(max_iterations=30)
        rng = np.random.default_rng(7)
        goal = np.zeros(problem.state_dim)
        x0 = 0.2 * rng.standard_normal((6, problem.state_dim))
        ref = BatchTinyMPCSolver(problem, 6, settings=settings).solve(
            x0, Xref=goal)
        with use_compiled_kernels(_COMPILED_NAME):
            com = BatchTinyMPCSolver(problem, 6, settings=settings).solve(
                x0, Xref=goal)
        np.testing.assert_array_equal(com.iterations, ref.iterations)
        np.testing.assert_array_equal(com.converged, ref.converged)
        np.testing.assert_allclose(com.states, ref.states,
                                   rtol=1e-9, atol=1e-11)


class TestFloat32Mode:
    def test_float32_rejected_without_capable_backend(self):
        problem = default_quadrotor_problem()
        assert active_backend() == "numpy"
        assert not active_supports_float32()
        with pytest.raises(ValueError, match="float32-capable"):
            TinyMPCSolver(problem, SolverSettings(dtype="float32"))

    def test_dtype_validated(self):
        with pytest.raises(ValueError, match="dtype"):
            SolverSettings(dtype="float16")

    @needs_float32
    def test_float32_solver_tracks_float64(self):
        problem = default_quadrotor_problem()
        rng = np.random.default_rng(3)
        goal = np.zeros(problem.state_dim)
        x0 = 0.2 * rng.standard_normal(problem.state_dim)
        ref = TinyMPCSolver(problem, SolverSettings(max_iterations=20)).solve(
            x0, Xref=goal)
        with use_compiled_kernels(_COMPILED_NAME):
            assert active_supports_float32()
            solver = TinyMPCSolver(
                problem, SolverSettings(max_iterations=20, dtype="float32"))
            assert solver.workspace.compute_dtype == "float32"
            sol = solver.solve(x0, Xref=goal)
        # Storage stays float64; values within single-precision distance.
        assert sol.states.dtype == np.float64
        np.testing.assert_allclose(sol.states, ref.states,
                                   rtol=1e-3, atol=1e-5)


# ---------------------------------------------------------------------------
# No-numba fallback (subprocess)
# ---------------------------------------------------------------------------

_FALLBACK_SCRIPT = r"""
import sys

class _BlockNumba:
    def find_spec(self, name, path=None, target=None):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked for fallback test")
        return None

sys.meta_path.insert(0, _BlockNumba())
sys.path.insert(0, sys.argv[1])

import numpy as np
import repro.tinympc as tinympc

# REPRO_KERNEL_BACKEND=numba was requested but numba cannot import: the
# activation must land on the numpy kernels without raising.
assert tinympc.active_backend() == "numpy", tinympc.active_backend()
info = tinympc.available_backends()
assert info["numba"].startswith("unavailable"), info

problem = tinympc.default_quadrotor_problem()
solver = tinympc.TinyMPCSolver(
    problem, tinympc.SolverSettings(max_iterations=12))
solution = solver.solve(0.1 * np.ones(problem.state_dim),
                        Xref=np.zeros(problem.state_dim))
print(repr(float(solution.states.sum())))
print(repr(float(solution.inputs.sum())))
print(solution.iterations)
"""


class TestNoNumbaFallback:
    def test_requested_numba_without_numba_selects_numpy_identically(self):
        env = dict(os.environ)
        env["REPRO_KERNEL_BACKEND"] = "numba"
        env.pop("PYTHONPATH", None)
        proc = subprocess.run(
            [sys.executable, "-c", _FALLBACK_SCRIPT, SRC_DIR],
            capture_output=True, text=True, env=env, timeout=240)
        assert proc.returncode == 0, proc.stderr
        states_sum, inputs_sum, iterations = proc.stdout.strip().splitlines()

        # The same solve through this process's numpy kernels: the fallback
        # must be *identical*, not merely close — it selects the very same
        # implementations.
        problem = default_quadrotor_problem()
        with use_compiled_kernels("numpy"):
            solution = TinyMPCSolver(
                problem, SolverSettings(max_iterations=12)).solve(
                    0.1 * np.ones(problem.state_dim),
                    Xref=np.zeros(problem.state_dim))
        assert states_sum == repr(float(solution.states.sum()))
        assert inputs_sum == repr(float(solution.inputs.sum()))
        assert int(iterations) == solution.iterations


# ---------------------------------------------------------------------------
# Fleet integration
# ---------------------------------------------------------------------------

@needs_compiled
class TestFleetIntegration:
    def test_solver_pool_keys_on_backend(self):
        from repro.fleet.scheduler import SolverPool
        problem = default_quadrotor_problem()
        settings = SolverSettings()
        numpy_key = SolverPool._key(problem, settings, 4)
        with use_compiled_kernels(_COMPILED_NAME):
            compiled_key = SolverPool._key(problem, settings, 4)
        assert numpy_key != compiled_key

    def test_compatibility_key_includes_dtype(self):
        from repro.fleet.scheduler import compatibility_key
        problem = default_quadrotor_problem()
        key64 = compatibility_key(problem, SolverSettings())
        with use_compiled_kernels(_COMPILED_NAME):
            if not active_supports_float32():
                pytest.skip("active backend has no float32 mode")
            key32 = compatibility_key(problem,
                                      SolverSettings(dtype="float32"))
        assert key64 != key32

    def test_recovery_campaign_discrete_outcomes_match(self):
        """The acceptance campaign: a Fig. 17-style disturbance-recovery
        slice run under the compiled backend reproduces the numpy
        campaign's discrete outcomes — recovered flags and recovery times —
        episode for episode."""
        from repro.fleet import CampaignSpec, run_campaign

        spec = CampaignSpec(
            name="compiled-recovery", episode_kind="recovery",
            implementations=("vector",),
            disturbance_categories=("force",),
            recovery_duration=1.5)
        reference = run_campaign(spec)
        with use_compiled_kernels(_COMPILED_NAME):
            compiled_run = run_campaign(spec)
        assert len(reference.results) == len(compiled_run.results) > 0
        for index, (ref, com) in enumerate(
                zip(reference.results, compiled_run.results)):
            assert com.recovered == ref.recovered, index
            assert com.time_to_recovery == ref.time_to_recovery, index
            np.testing.assert_allclose(com.max_deviation, ref.max_deviation,
                                       rtol=1e-6, atol=1e-9,
                                       err_msg=str(index))
