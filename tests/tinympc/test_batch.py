"""Tests for the batched solver engine: equivalence, masking, warm starts."""

import numpy as np
import pytest

from repro.tinympc import (
    BatchTinyMPCSolver,
    BatchTinyMPCWorkspace,
    MPCProblem,
    SolverSettings,
    TinyMPCSolution,
    TinyMPCSolver,
    default_quadrotor_problem,
)


@pytest.fixture(scope="module")
def problem():
    return default_quadrotor_problem()


def _double_integrator(horizon=15, u_limit=2.0, rho=1.0):
    dt = 0.1
    A = np.array([[1.0, dt], [0.0, 1.0]])
    B = np.array([[0.5 * dt * dt], [dt]])
    return MPCProblem(A=A, B=B, Q=np.diag([10.0, 1.0]), R=np.array([[0.1]]),
                      rho=rho, horizon=horizon, u_min=-u_limit, u_max=u_limit)


def _random_states(batch_size, state_dim, seed=0, scale=0.3):
    rng = np.random.default_rng(seed)
    return scale * rng.standard_normal((batch_size, state_dim))


class TestBatchWorkspace:
    def test_shapes_have_leading_batch_axis(self, problem):
        ws = BatchTinyMPCWorkspace(problem, batch=5)
        N, n, m = problem.horizon, problem.state_dim, problem.input_dim
        assert ws.x.shape == (5, N, n)
        assert ws.u.shape == (5, N - 1, m)
        assert ws.primal_residual_state.shape == (5,)

    def test_reference_broadcasting(self, problem):
        ws = BatchTinyMPCWorkspace(problem, batch=3)
        N, n = problem.horizon, problem.state_dim
        goal = np.arange(n, dtype=float)
        ws.set_reference(goal)                      # (n,) -> everyone
        assert np.array_equal(ws.Xref[2, N - 1], goal)
        per_instance = np.stack([goal, 2 * goal, 3 * goal])
        ws.set_reference(per_instance)              # (B, n) -> per instance
        assert np.array_equal(ws.Xref[1, 0], 2 * goal)
        trajectories = np.zeros((3, N, n))
        trajectories[0, 0, 0] = 7.0
        ws.set_reference(trajectories)              # (B, N, n) verbatim
        assert ws.Xref[0, 0, 0] == 7.0

    def test_invalid_shapes_rejected(self, problem):
        ws = BatchTinyMPCWorkspace(problem, batch=3)
        with pytest.raises(ValueError):
            ws.set_reference(np.zeros((4, problem.state_dim + 1)))
        with pytest.raises(ValueError):
            ws.set_initial_state(np.zeros((2, problem.state_dim)))
        with pytest.raises(ValueError):
            BatchTinyMPCWorkspace(problem, batch=0)


class TestBatchSequentialEquivalence:
    """The acceptance bar: batched == sequential at B=64, rtol=1e-10."""

    def test_64_instance_batch_matches_sequential(self, problem):
        batch_size = 64
        x0s = _random_states(batch_size, problem.state_dim, seed=1)
        goals = np.zeros((batch_size, problem.state_dim))
        goals[:, 0:3] = _random_states(batch_size, 3, seed=2, scale=0.2)
        settings = SolverSettings(max_iterations=50)

        sequential = [TinyMPCSolver(problem, SolverSettings(max_iterations=50))
                      for _ in range(batch_size)]
        solutions = [sequential[b].solve(x0s[b], Xref=goals[b])
                     for b in range(batch_size)]
        batch = BatchTinyMPCSolver(problem, batch_size, settings)
        batched = batch.solve(x0s, Xref=goals)

        assert np.array_equal(batched.iterations,
                              [s.iterations for s in solutions])
        assert np.array_equal(batched.converged,
                              [s.converged for s in solutions])
        np.testing.assert_allclose(
            batched.states, np.stack([s.states for s in solutions]),
            rtol=1e-10, atol=1e-13)
        np.testing.assert_allclose(
            batched.inputs, np.stack([s.inputs for s in solutions]),
            rtol=1e-10, atol=1e-13)

    def test_warm_started_sequence_matches_sequential(self, problem):
        """Three solves on a slowly-moving state: warm-start state carried in
        the batch workspace must match each scalar solver's."""
        batch_size = 16
        x0s = _random_states(batch_size, problem.state_dim, seed=3)
        goal = np.zeros(problem.state_dim)
        sequential = [TinyMPCSolver(problem, SolverSettings(max_iterations=40))
                      for _ in range(batch_size)]
        batch = BatchTinyMPCSolver(problem, batch_size,
                                   SolverSettings(max_iterations=40))
        for step in range(3):
            states = x0s * (0.9 ** step)
            solutions = [sequential[b].solve(states[b], Xref=goal)
                         for b in range(batch_size)]
            batched = batch.solve(states, Xref=goal)
            assert np.array_equal(batched.iterations,
                                  [s.iterations for s in solutions])
            assert np.array_equal(batched.warm_started,
                                  [s.warm_started for s in solutions])
            np.testing.assert_allclose(
                batched.inputs, np.stack([s.inputs for s in solutions]),
                rtol=1e-10, atol=1e-13)

    def test_batch_of_one_matches_scalar_solver(self):
        problem = _double_integrator()
        scalar = TinyMPCSolver(problem, SolverSettings(max_iterations=100))
        batch = BatchTinyMPCSolver(problem, 1, SolverSettings(max_iterations=100))
        x0 = np.array([1.0, 0.0])
        scalar_solution = scalar.solve(x0, Xref=np.zeros(2))
        batch_solution = batch.solve(x0[None, :], Xref=np.zeros(2))
        assert batch_solution.iterations[0] == scalar_solution.iterations
        np.testing.assert_allclose(batch_solution.states[0],
                                   scalar_solution.states,
                                   rtol=1e-10, atol=1e-13)

    def test_constrained_batch_respects_bounds(self):
        problem = _double_integrator(u_limit=0.5)
        batch = BatchTinyMPCSolver(problem, 8, SolverSettings(max_iterations=200))
        x0s = np.zeros((8, 2))
        x0s[:, 0] = np.linspace(-2.0, 2.0, 8)
        solution = batch.solve(x0s, Xref=np.zeros(2))
        assert np.all(solution.inputs <= problem.u_max + 1e-9)
        assert np.all(solution.inputs >= problem.u_min - 1e-9)
        # Workspace carries the same clipped inputs the solution reports.
        np.testing.assert_array_equal(batch.workspace.u, solution.inputs)


class TestActiveMask:
    def test_inactive_instances_left_untouched(self, problem):
        batch_size = 8
        batch = BatchTinyMPCSolver(problem, batch_size,
                                   SolverSettings(max_iterations=20))
        x0s = _random_states(batch_size, problem.state_dim, seed=4)
        batch.solve(x0s, Xref=np.zeros(problem.state_dim))
        before = batch.workspace.snapshot()
        residuals_before = {name: np.array(values) for name, values
                            in batch.workspace.residuals().items()}

        mask = np.zeros(batch_size, dtype=bool)
        mask[::2] = True
        solution = batch.solve(2.0 * x0s, Xref=np.zeros(problem.state_dim),
                               active=mask)
        assert np.array_equal(solution.active, mask)
        assert np.all(solution.iterations[~mask] == 0)
        assert np.all(solution.iterations[mask] > 0)
        for index in np.flatnonzero(~mask):
            for name, array in before.items():
                assert np.array_equal(
                    getattr(batch.workspace, name)[index], array[index]), name
            for name, values in residuals_before.items():
                assert batch.workspace.residuals()[name][index] == values[index]

    def test_masked_solve_matches_full_solve_on_active_rows(self, problem):
        """A masked solve must compute exactly what a dense solve would."""
        batch_size = 6
        x0s = _random_states(batch_size, problem.state_dim, seed=5)
        goal = np.zeros(problem.state_dim)
        dense = BatchTinyMPCSolver(problem, batch_size,
                                   SolverSettings(max_iterations=20))
        masked = BatchTinyMPCSolver(problem, batch_size,
                                    SolverSettings(max_iterations=20))
        dense_solution = dense.solve(x0s, Xref=goal)
        mask = np.array([True, False] * 3)
        masked_solution = masked.solve(x0s, Xref=goal, active=mask)
        np.testing.assert_allclose(masked_solution.inputs[mask],
                                   dense_solution.inputs[mask],
                                   rtol=1e-12, atol=1e-14)
        assert np.array_equal(masked_solution.iterations[mask],
                              dense_solution.iterations[mask])

    def test_mask_validation(self, problem):
        batch = BatchTinyMPCSolver(problem, 4)
        x0s = np.zeros((4, problem.state_dim))
        with pytest.raises(ValueError):
            batch.solve(x0s, active=np.zeros(3, dtype=bool))
        with pytest.raises(ValueError):
            batch.solve(x0s, active=np.zeros(4, dtype=bool))


class TestBatchWarmStart:
    def test_reset_clears_every_instance(self, problem):
        batch = BatchTinyMPCSolver(problem, 4, SolverSettings(max_iterations=10))
        x0s = _random_states(4, problem.state_dim, seed=6)
        first = batch.solve(x0s, Xref=np.zeros(problem.state_dim))
        assert not first.warm_started.any()
        second = batch.solve(x0s, Xref=np.zeros(problem.state_dim))
        assert second.warm_started.all()
        batch.reset()
        assert not np.any(batch.workspace.y)
        assert not np.any(batch.workspace.g)
        third = batch.solve(x0s, Xref=np.zeros(problem.state_dim))
        assert not third.warm_started.any()

    def test_statistics_accumulate_per_instance(self, problem):
        batch = BatchTinyMPCSolver(problem, 4, SolverSettings(max_iterations=5))
        x0s = _random_states(4, problem.state_dim, seed=7)
        batch.solve(x0s)
        mask = np.array([True, True, False, False])
        batch.solve(x0s, active=mask)
        assert batch.total_batch_solves == 2
        assert batch.total_instance_solves == 6
        assert batch.average_iterations > 0


class TestBatchSolutionObject:
    def test_instance_extraction(self, problem):
        batch = BatchTinyMPCSolver(problem, 3, SolverSettings(max_iterations=8))
        x0s = _random_states(3, problem.state_dim, seed=8)
        solution = batch.solve(x0s, Xref=np.zeros(problem.state_dim))
        assert len(solution) == 3
        instances = list(solution)
        assert all(isinstance(s, TinyMPCSolution) for s in instances)
        for index, instance in enumerate(instances):
            np.testing.assert_array_equal(instance.states,
                                          solution.states[index])
            assert instance.iterations == solution.iterations[index]
            np.testing.assert_array_equal(instance.control,
                                          solution.control[index])

    def test_invalid_batch_size_rejected(self, problem):
        with pytest.raises(ValueError):
            BatchTinyMPCSolver(problem, 0)
