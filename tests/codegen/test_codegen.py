"""Tests for the code-generation flow: passes, lowering, and compile-and-time."""

import numpy as np
import pytest

from repro.arch import GemminiOpcode, VectorOpcode, get_design_point
from repro.codegen import (
    CodegenFlow,
    GemminiLoweringOptions,
    OPTIMIZATION_LEVELS,
    ScalarLoweringOptions,
    VectorLoweringOptions,
    count_redundant_configs,
    fuse_elementwise,
    lower_gemmini,
    lower_scalar,
    lower_vector,
    plan_scratchpad_residency,
)
from repro.matlib import OpKind
from repro.tinympc import build_iteration_program, default_quadrotor_problem


@pytest.fixture(scope="module")
def program():
    return build_iteration_program(default_quadrotor_problem())


@pytest.fixture(scope="module")
def flow():
    return CodegenFlow()


class TestFusionPass:
    def test_fusion_reduces_op_count(self, program):
        report = fuse_elementwise(program)
        assert report.ops_after < report.ops_before
        assert report.ops_removed == report.ops_before - report.ops_after
        assert report.bytes_saved >= 0

    def test_fusion_preserves_flops(self, program):
        report = fuse_elementwise(program)
        assert report.program.total_flops == program.total_flops

    def test_fusion_preserves_kernel_tags(self, program):
        report = fuse_elementwise(program)
        assert set(report.program.kernels()) == set(program.kernels())

    def test_fused_records_are_marked(self, program):
        report = fuse_elementwise(program)
        fused = [op for op in report.program if op.fused_from]
        assert len(fused) == len(report.fused_groups)


class TestScratchpadPlanning:
    def test_solver_matrices_resident(self, program):
        plan = plan_scratchpad_residency(program, scratchpad_kb=64)
        for name in ("Adyn", "Bdyn", "Kinf", "Pinf", "Quu_inv", "AmBKt"):
            assert plan.is_resident(name), name
        assert plan.fits
        assert 0.0 < plan.occupancy <= 1.0

    def test_utility_identities_allocated(self, program):
        plan = plan_scratchpad_residency(program, scratchpad_kb=64)
        assert "identity" in plan.utility_buffers

    def test_tiny_scratchpad_spills(self, program):
        plan = plan_scratchpad_residency(program, scratchpad_kb=1)
        assert plan.spilled_buffers

    def test_row_assignments_do_not_overlap(self, program):
        plan = plan_scratchpad_residency(program, scratchpad_kb=64)
        spans = sorted(plan.row_assignments.values())
        for (start_a, rows_a), (start_b, _) in zip(spans, spans[1:]):
            assert start_a + rows_a <= start_b

    def test_redundant_config_counter(self, program):
        assert count_redundant_configs(program) >= 0


class TestScalarLowering:
    def test_library_has_call_overhead(self, program):
        stream = lower_scalar(program, ScalarLoweringOptions(style="library"))
        assert all(work.op_calls == 1 for work in stream)

    def test_eigen_inlines_calls(self, program):
        stream = lower_scalar(program, ScalarLoweringOptions(style="eigen"))
        assert all(work.op_calls == 0 for work in stream)

    def test_invalid_style_rejected(self):
        with pytest.raises(ValueError):
            ScalarLoweringOptions(style="banana")

    def test_kernel_tags_preserved(self, program):
        stream = lower_scalar(program)
        assert set(stream.kernels()) == set(program.kernels())


class TestVectorLowering:
    def test_library_emits_loads_and_stores(self, program):
        stream = lower_vector(program, VectorLoweringOptions.library())
        assert stream.count_opcode(VectorOpcode.VLOAD) > 0
        assert stream.count_opcode(VectorOpcode.VSTORE) > 0

    def test_fusion_removes_stores(self, program):
        library = lower_vector(program, VectorLoweringOptions.library())
        fused = lower_vector(fuse_elementwise(program).program,
                             VectorLoweringOptions.fused())
        assert fused.count_opcode(VectorOpcode.VSTORE) < library.count_opcode(
            VectorOpcode.VSTORE)
        assert len(fused) < len(library)

    def test_lmul_reduces_elementwise_instruction_count(self):
        problem = default_quadrotor_problem(horizon=25)
        program = build_iteration_program(problem)
        lmul1 = lower_vector(program, VectorLoweringOptions.library(lmul=1))
        lmul8 = lower_vector(program, VectorLoweringOptions.library(lmul=8))
        count1 = sum(1 for i in lmul1 if i.opcode is VectorOpcode.VARITH)
        count8 = sum(1 for i in lmul8 if i.opcode is VectorOpcode.VARITH)
        assert count8 < count1

    def test_invalid_lmul_rejected(self):
        with pytest.raises(ValueError):
            VectorLoweringOptions(lmul=3)

    def test_unrolled_reduces_scalar_bookkeeping(self, program):
        library = lower_vector(program, VectorLoweringOptions.library())
        unrolled = lower_vector(program, VectorLoweringOptions.unrolled())
        scalar_lib = sum(i.elements for i in library if i.opcode is VectorOpcode.SCALAR)
        scalar_unr = sum(i.elements for i in unrolled if i.opcode is VectorOpcode.SCALAR)
        assert scalar_unr < scalar_lib


class TestGemminiLowering:
    def test_library_stages_through_dram_with_fences(self, program):
        stream = lower_gemmini(program, GemminiLoweringOptions.library())
        assert stream.count_opcode(GemminiOpcode.FENCE) > 0
        dram_moves = sum(1 for i in stream
                         if i.opcode in (GemminiOpcode.MVIN, GemminiOpcode.MVOUT)
                         and i.dram)
        assert dram_moves > 0

    def test_scratchpad_mode_eliminates_dram_traffic(self, program):
        stream = lower_gemmini(program, GemminiLoweringOptions.scratchpad())
        dram_moves = sum(1 for i in stream
                         if i.opcode in (GemminiOpcode.MVIN, GemminiOpcode.MVOUT)
                         and i.dram)
        assert dram_moves == 0

    def test_optimized_uses_activation_instead_of_cpu_fallback(self, program):
        baseline = lower_gemmini(program, GemminiLoweringOptions.scratchpad())
        optimized = lower_gemmini(program, GemminiLoweringOptions.optimized())
        assert (optimized.count_opcode(GemminiOpcode.CPU_OP)
                < baseline.count_opcode(GemminiOpcode.CPU_OP))

    def test_larger_sync_granularity_fewer_fences(self, program):
        fine = lower_gemmini(program, GemminiLoweringOptions(
            scratchpad_resident=True, use_activation_engine=True, use_pooling=True,
            sync_granularity=1))
        coarse = lower_gemmini(program, GemminiLoweringOptions(
            scratchpad_resident=True, use_activation_engine=True, use_pooling=True,
            sync_granularity=16))
        assert coarse.count_opcode(GemminiOpcode.FENCE) < fine.count_opcode(
            GemminiOpcode.FENCE)

    def test_redundant_config_elimination(self, program):
        with_configs = lower_gemmini(program, GemminiLoweringOptions(
            static_mapping=True, eliminate_redundant_config=False))
        without = lower_gemmini(program, GemminiLoweringOptions(
            static_mapping=True, eliminate_redundant_config=True))
        assert without.count_opcode(GemminiOpcode.CONFIG) <= with_configs.count_opcode(
            GemminiOpcode.CONFIG)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            GemminiLoweringOptions(sync_granularity=0)


class TestCodegenFlow:
    def test_invalid_level_rejected(self, program, flow):
        with pytest.raises(ValueError):
            flow.compile(program, "rocket", "fused")

    @pytest.mark.parametrize("design_point,category", [
        ("rocket", "scalar"),
        ("saturn-v512-d256-rocket", "vector"),
        ("gemmini-4x4-os-64k-rocket", "systolic"),
    ])
    def test_every_level_compiles_and_times(self, program, flow, design_point, category):
        for level in OPTIMIZATION_LEVELS[category]:
            result = flow.compile(program, design_point, level)
            assert result.cycles > 0
            assert result.report.instruction_count == len(result.stream)

    def test_optimizations_never_hurt_on_vector(self, program, flow):
        library = flow.compile(program, "saturn-v512-d256-rocket", "library")
        unrolled = flow.compile(program, "saturn-v512-d256-rocket", "unrolled")
        fused = flow.compile(program, "saturn-v512-d256-rocket", "fused")
        assert fused.cycles < unrolled.cycles < library.cycles

    def test_optimizations_never_hurt_on_gemmini(self, program, flow):
        levels = ["library", "static", "scratchpad", "elementwise", "optimized"]
        cycles = [flow.compile(program, "gemmini-4x4-os-64k-rocket", level).cycles
                  for level in levels]
        assert all(later <= earlier for earlier, later in zip(cycles, cycles[1:]))

    def test_best_level_picks_minimum(self, program, flow):
        best = flow.best_level(program, "saturn-v512-d256-rocket")
        assert best.level == "fused"

    def test_speedup_over_baseline(self, program, flow):
        library = flow.compile(program, "saturn-v512-d256-rocket", "library")
        fused = flow.compile(program, "saturn-v512-d256-rocket", "fused")
        assert fused.speedup_over(library) > 1.0
