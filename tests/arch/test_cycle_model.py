"""Accuracy contract for the analytical cycle model.

The ``fidelity="model"`` campaign axis stands in for full
compile-and-simulate trace evaluation, so its accuracy is pinned here:
every catalog (design point, optimization level) pair must stay within
:data:`~repro.arch.cycle_model.PINNED_TOLERANCE` of the trace (CI runs the
same sweep via ``scripts/validate_cycle_model.py``), and the points a
designer would actually pick — the Figure 10 Pareto frontier — must match
the trace *exactly*, counters included.
"""

import pytest

from repro.arch import list_design_points
from repro.arch.cycle_model import (
    PINNED_TOLERANCE,
    model_report,
    stream_counters,
    validate_catalog,
)
from repro.codegen import OPTIMIZATION_LEVELS, CodegenFlow
from repro.experiments.kernel_experiments import default_program


@pytest.fixture(scope="module")
def catalog_validation():
    return validate_catalog(levels="all")


class TestCatalogAccuracy:
    def test_sweep_covers_every_point_level_pair(self, catalog_validation):
        expected = sum(len(OPTIMIZATION_LEVELS[point.category])
                       for point in list_design_points())
        assert len(catalog_validation) == expected
        assert expected == 48

    def test_every_pair_within_pinned_tolerance(self, catalog_validation):
        failures = [v.as_row() for v in catalog_validation
                    if not v.within_tolerance]
        assert not failures, failures

    def test_every_category_within_tolerance(self, catalog_validation):
        worst = {}
        for validation in catalog_validation:
            worst[validation.category] = max(
                worst.get(validation.category, 0.0),
                validation.relative_error)
        assert set(worst) == {"scalar", "vector", "systolic"}
        for category, error in worst.items():
            assert error <= PINNED_TOLERANCE, (category, error)

    def test_whole_catalog_is_currently_bit_exact(self, catalog_validation):
        # Stronger than the tolerance contract and deliberately pinned: the
        # model re-derives the backends' closed forms, so any drift at all
        # means one side changed without the other.
        inexact = [v.as_row() for v in catalog_validation if not v.exact]
        assert not inexact, inexact


class TestFrontierExactness:
    def test_model_frontier_promotes_to_exact_trace(self):
        from repro.experiments.pareto_experiments import fig10_pareto
        rows = fig10_pareto(engine="fleet", fidelity="model")
        frontier = [row for row in rows if row["pareto_optimal"]]
        assert frontier
        for row in frontier:
            assert row["trace_confirmed"], row
            assert row["trace_cycles_per_iteration"] == \
                row["cycles_per_iteration"]

    @pytest.mark.parametrize("point,level", [
        ("rocket", "eigen"),
        ("saturn-v512-d512-rocket", "fused"),
        ("gemmini-4x4-os-64k-rocket", "optimized"),
    ])
    def test_spot_check_counters_match_trace(self, point, level):
        program = default_program()
        compiled = CodegenFlow().compile(program, point, level)
        traced = stream_counters(compiled.stream)
        report, modeled = model_report(program, point, level,
                                       with_counters=True)
        assert report.total_cycles == compiled.report.total_cycles
        assert modeled == traced
