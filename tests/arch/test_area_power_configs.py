"""Tests for the area model, the power model, and the design-point registry."""

import pytest

from repro.arch import (
    ALL_DESIGN_POINTS,
    CYGNUS_VECTOR_CORE,
    GEMMINI_CONFIGS,
    ROCKET,
    SATURN_CONFIGS,
    SCALAR_CONFIGS,
    SHUTTLE,
    SMALL_BOOM,
    SoCPowerModel,
    design_point_area,
    gemmini_area,
    get_design_point,
    list_design_points,
    make_backend,
    scalar_core_area,
    sram_area,
    vector_unit_area,
)


class TestAreaModel:
    def test_rocket_is_small(self):
        assert scalar_core_area(ROCKET) < 1.0

    def test_out_of_order_costs_area(self):
        assert scalar_core_area(SMALL_BOOM) > scalar_core_area(SHUTTLE)

    def test_vector_units_larger_than_scalar_cores(self):
        for config in SATURN_CONFIGS.values():
            assert vector_unit_area(config) > scalar_core_area(config.frontend)

    def test_wider_datapath_costs_area(self):
        d128 = SATURN_CONFIGS["saturn-v512-d128-rocket"]
        d256 = SATURN_CONFIGS["saturn-v512-d256-rocket"]
        assert vector_unit_area(d256) > vector_unit_area(d128)

    def test_gemmini_in_paper_window(self):
        """Gemmini design points land in the 1.5-2.3 mm^2 window of Fig. 10."""
        for key in ("gemmini-4x4-os-64k-rocket", "gemmini-4x4-os-32k-rocket"):
            area = gemmini_area(GEMMINI_CONFIGS[key])
            assert 1.4 < area < 2.4

    def test_saturn_above_gemmini_window(self):
        for config in SATURN_CONFIGS.values():
            assert vector_unit_area(config) > 2.3

    def test_sram_area_monotone(self):
        assert sram_area(64) > sram_area(32) > 0.0
        assert sram_area(0) == 0.0

    def test_dispatcher_matches_specific_estimators(self):
        assert design_point_area(ROCKET) == scalar_core_area(ROCKET)
        saturn = SATURN_CONFIGS["saturn-v512-d256-rocket"]
        assert design_point_area(saturn) == vector_unit_area(saturn)

    def test_dispatcher_rejects_unknown(self):
        with pytest.raises(TypeError):
            design_point_area(object())


class TestPowerModel:
    def test_power_increases_with_frequency(self):
        model = SoCPowerModel()
        assert model.power(500, 2.0) > model.power(100, 2.0)

    def test_power_increases_with_area(self):
        model = SoCPowerModel()
        assert model.power(100, 4.0) > model.power(100, 1.0)

    def test_activity_scaling(self):
        model = SoCPowerModel()
        busy = model.power(100, 2.0, activity=1.0)
        idle = model.power(100, 2.0, activity=0.0)
        assert idle < busy
        assert idle > model.leakage_w

    def test_compute_power_is_small_relative_to_actuation(self):
        """Figure 16c: SoC power is a few percent of a ~2-3 W drone budget."""
        model = SoCPowerModel()
        power = model.power(100, CYGNUS_VECTOR_CORE and 3.9, activity=0.1)
        assert power < 0.3

    def test_voltage_scaling_kicks_in_at_high_frequency(self):
        model = SoCPowerModel()
        low = model.power(200, 2.0) / 200
        high = model.power(600, 2.0) / 600
        assert high > low

    def test_energy_per_solve(self):
        model = SoCPowerModel()
        energy = model.energy_per_solve(100, 2.0, solve_cycles=1e5)
        assert energy > 0
        with pytest.raises(ValueError):
            model.energy_per_solve(0, 2.0, 1e5)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            SoCPowerModel().power(-1, 1.0)


class TestDesignPointRegistry:
    def test_registry_covers_all_categories(self):
        categories = {point.category for point in list_design_points()}
        assert categories == {"scalar", "vector", "systolic"}

    def test_counts(self):
        assert len(list_design_points("scalar")) == len(SCALAR_CONFIGS)
        assert len(list_design_points("vector")) == len(SATURN_CONFIGS)
        assert len(list_design_points("systolic")) == len(GEMMINI_CONFIGS)
        assert len(ALL_DESIGN_POINTS) == (len(SCALAR_CONFIGS) + len(SATURN_CONFIGS)
                                          + len(GEMMINI_CONFIGS))

    @pytest.mark.parametrize("name", sorted(ALL_DESIGN_POINTS))
    def test_every_point_builds_a_backend(self, name):
        point = get_design_point(name)
        backend = make_backend(name)
        assert backend.peak_flops_per_cycle > 0
        assert point.area_mm2 > 0

    def test_unknown_point_raises(self):
        with pytest.raises(KeyError):
            get_design_point("not-a-design")

    def test_cygnus_matches_paper_description(self):
        """Cygnus: dual-issue Shuttle frontend, VLEN=512, DLEN=256 (Sec. 5.2)."""
        assert CYGNUS_VECTOR_CORE.vlen == 512
        assert CYGNUS_VECTOR_CORE.dlen == 256
        assert CYGNUS_VECTOR_CORE.frontend.decode_width == 2
