"""Tests for the scalar, vector, and systolic timing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    GemminiConfig,
    GemminiInstruction,
    GemminiModel,
    GemminiOpcode,
    InstructionStream,
    MemoryModel,
    ROCKET,
    SHUTTLE,
    SaturnConfig,
    SaturnModel,
    ScalarCoreModel,
    ScalarWork,
    VectorInstruction,
    VectorOpcode,
)


def _scalar_stream(flops=100, memory_bytes=256, op_calls=1, loops=10, chain=2):
    return InstructionStream([ScalarWork(kernel="k", flops=flops,
                                         memory_bytes=memory_bytes,
                                         op_calls=op_calls,
                                         loop_iterations=loops,
                                         dependent_chain=chain)],
                             backend="scalar")


class TestScalarModel:
    def test_report_structure(self):
        report = ScalarCoreModel(ROCKET).run(_scalar_stream())
        assert report.total_cycles > 0
        assert report.instruction_count == 1
        assert report.flops == 100
        assert report.kernel_cycles("k") == pytest.approx(report.total_cycles)
        assert sum(report.cycles_by_category.values()) == pytest.approx(report.total_cycles)

    def test_more_flops_more_cycles(self):
        model = ScalarCoreModel(ROCKET)
        small = model.run(_scalar_stream(flops=50)).total_cycles
        large = model.run(_scalar_stream(flops=500)).total_cycles
        assert large > small

    def test_wider_core_is_faster(self):
        stream = _scalar_stream(flops=2000, loops=200, op_calls=20)
        rocket = ScalarCoreModel(ROCKET).run(stream).total_cycles
        shuttle = ScalarCoreModel(SHUTTLE).run(stream).total_cycles
        assert shuttle < rocket

    def test_dependence_chain_hurts_in_order_more(self):
        from repro.arch import SMALL_BOOM
        independent = _scalar_stream(flops=512, chain=2)
        dependent = _scalar_stream(flops=512, chain=128)
        rocket_penalty = (ScalarCoreModel(ROCKET).run(dependent).total_cycles
                          / ScalarCoreModel(ROCKET).run(independent).total_cycles)
        boom_penalty = (ScalarCoreModel(SMALL_BOOM).run(dependent).total_cycles
                        / ScalarCoreModel(SMALL_BOOM).run(independent).total_cycles)
        assert rocket_penalty > boom_penalty

    def test_rejects_wrong_instruction_type(self):
        stream = InstructionStream([VectorInstruction(kernel="k",
                                                      opcode=VectorOpcode.VARITH,
                                                      elements=4)])
        with pytest.raises(TypeError):
            ScalarCoreModel(ROCKET).run(stream)

    def test_utilization_bounded(self):
        report = ScalarCoreModel(ROCKET).run(_scalar_stream(flops=10000))
        assert 0.0 < report.utilization(ROCKET.peak_flops_per_cycle) <= 1.0

    def test_latency_seconds_scales_with_frequency(self):
        report = ScalarCoreModel(ROCKET).run(_scalar_stream())
        assert report.latency_seconds(200e6) == pytest.approx(
            report.latency_seconds(100e6) / 2.0)


def _vector_stream(elements=16, count=8, lmul=1, sequential=False,
                   opcode=VectorOpcode.VARITH):
    return InstructionStream(
        [VectorInstruction(kernel="k", opcode=opcode, elements=elements,
                           lmul=lmul, sequential_dependency=sequential)
         for _ in range(count)], backend="vector")


class TestSaturnModel:
    def test_dlen_scaling(self):
        stream = _vector_stream(elements=64, count=20)
        narrow = SaturnModel(SaturnConfig("d128", vlen=512, dlen=128)).run(stream)
        wide = SaturnModel(SaturnConfig("d256", vlen=512, dlen=256)).run(stream)
        assert wide.total_cycles < narrow.total_cycles

    def test_shuttle_frontend_issues_faster(self):
        stream = _vector_stream(elements=4, count=50)
        rocket_front = SaturnModel(SaturnConfig("r", frontend=ROCKET)).run(stream)
        shuttle_front = SaturnModel(SaturnConfig("s", frontend=SHUTTLE)).run(stream)
        assert shuttle_front.total_cycles < rocket_front.total_cycles

    def test_lmul_grouping_penalizes_tiny_vectors(self):
        config = SaturnConfig("x", vlen=512, dlen=256)
        small_lmul1 = SaturnModel(config).run(_vector_stream(elements=4, lmul=1))
        small_lmul8 = SaturnModel(config).run(_vector_stream(elements=4, lmul=8))
        assert small_lmul8.total_cycles > small_lmul1.total_cycles

    def test_sequential_dependency_adds_stall(self):
        config = SaturnConfig("x")
        chained = SaturnModel(config).run(_vector_stream(sequential=True))
        independent = SaturnModel(config).run(_vector_stream(sequential=False))
        assert chained.total_cycles > independent.total_cycles
        assert chained.cycles_by_category.get("stall", 0.0) > 0

    def test_reduction_and_memory_opcodes(self):
        config = SaturnConfig("x")
        model = SaturnModel(config)
        for opcode in (VectorOpcode.VLOAD, VectorOpcode.VSTORE, VectorOpcode.VREDUCE,
                       VectorOpcode.VSETVL, VectorOpcode.SCALAR):
            report = model.run(_vector_stream(opcode=opcode, count=3))
            assert report.total_cycles > 0

    def test_peak_flops(self):
        assert SaturnConfig("x", dlen=256).peak_flops_per_cycle == 16.0
        assert SaturnConfig("x", dlen=512).peak_flops_per_cycle == 32.0

    def test_rejects_wrong_instruction_type(self):
        with pytest.raises(TypeError):
            SaturnModel(SaturnConfig("x")).run(_scalar_stream())


def _gemmini_stream(opcodes, **kwargs):
    instructions = []
    for opcode in opcodes:
        instructions.append(GemminiInstruction(kernel="k", opcode=opcode,
                                               rows=4, cols=4, inner=4, **kwargs))
    return InstructionStream(instructions, backend="gemmini")


class TestGemminiModel:
    def test_fence_cost(self):
        config = GemminiConfig("g")
        report = GemminiModel(config).run(_gemmini_stream([GemminiOpcode.FENCE]))
        assert report.total_cycles == pytest.approx(config.fence_stall_cycles)

    def test_dram_staging_slower_than_scratchpad(self):
        model = GemminiModel(GemminiConfig("g"))
        dram = model.run(InstructionStream([GemminiInstruction(
            kernel="k", opcode=GemminiOpcode.MVIN, rows=12, cols=12, dram=True)]))
        scratchpad = model.run(InstructionStream([GemminiInstruction(
            kernel="k", opcode=GemminiOpcode.MVIN, rows=12, cols=12, dram=False)]))
        assert dram.total_cycles > scratchpad.total_cycles

    def test_static_mapping_cheaper_issue(self):
        model = GemminiModel(GemminiConfig("g"))
        dynamic = model.run(InstructionStream([GemminiInstruction(
            kernel="k", opcode=GemminiOpcode.CONFIG, statically_mapped=False)]))
        static = model.run(InstructionStream([GemminiInstruction(
            kernel="k", opcode=GemminiOpcode.CONFIG, statically_mapped=True)]))
        assert static.total_cycles < dynamic.total_cycles

    def test_weight_stationary_slower_per_tile(self):
        os_model = GemminiModel(GemminiConfig("os", dataflow="OS"))
        ws_model = GemminiModel(GemminiConfig("ws", dataflow="WS", accumulator_kb=1))
        stream = _gemmini_stream([GemminiOpcode.COMPUTE])
        assert ws_model.run(stream).total_cycles > os_model.run(stream).total_cycles

    def test_compute_flops_counted(self):
        report = GemminiModel(GemminiConfig("g")).run(
            _gemmini_stream([GemminiOpcode.COMPUTE]))
        assert report.flops == 2 * 4 * 4 * 4

    def test_cpu_fallback_scales_with_flops(self):
        model = GemminiModel(GemminiConfig("g"))
        small = model.run(InstructionStream([GemminiInstruction(
            kernel="k", opcode=GemminiOpcode.CPU_OP, cpu_flops=10)]))
        large = model.run(InstructionStream([GemminiInstruction(
            kernel="k", opcode=GemminiOpcode.CPU_OP, cpu_flops=1000)]))
        assert large.total_cycles > small.total_cycles

    def test_invalid_dataflow_rejected(self):
        with pytest.raises(ValueError):
            GemminiConfig("bad", dataflow="XY")

    def test_rejects_wrong_instruction_type(self):
        with pytest.raises(TypeError):
            GemminiModel(GemminiConfig("g")).run(_scalar_stream())


class TestMemoryModel:
    def test_zero_bytes_cost_nothing(self):
        memory = MemoryModel()
        assert memory.l1_access_cycles(0) == 0.0
        assert memory.dram_access_cycles(0) == 0.0

    def test_dram_slower_than_l1(self):
        memory = MemoryModel()
        assert memory.dram_access_cycles(256) > memory.l1_access_cycles(256)

    def test_scratchpad_fastest(self):
        memory = MemoryModel()
        assert memory.scratchpad_access_cycles(256) < memory.l1_access_cycles(256)


# ---------------------------------------------------------------------------
# Property tests: timing monotonicity
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.integers(1, 2000), st.integers(1, 2000))
def test_scalar_cycles_monotone_in_flops(f1, f2):
    model = ScalarCoreModel(ROCKET)
    c1 = model.run(_scalar_stream(flops=f1)).total_cycles
    c2 = model.run(_scalar_stream(flops=f2)).total_cycles
    if f1 < f2:
        assert c1 <= c2
    elif f1 > f2:
        assert c1 >= c2


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 512), st.sampled_from([1, 2, 4, 8]))
def test_vector_cycles_positive_and_finite(elements, lmul):
    model = SaturnModel(SaturnConfig("x"))
    report = model.run(_vector_stream(elements=elements, lmul=lmul, count=3))
    assert np.isfinite(report.total_cycles)
    assert report.total_cycles > 0
