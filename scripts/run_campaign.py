#!/usr/bin/env python
"""Run a fleet campaign from the command line.

Expands a cross-product grid of HIL episodes, runs it through the fleet
campaign engine (event-driven dynamic batching, optional process sharding),
and prints per-cell aggregate rows.  Examples::

    # 2 difficulties x 8 seeds x 2 clock frequencies, in-process
    PYTHONPATH=src python scripts/run_campaign.py \\
        --difficulties easy,medium --seeds 8 --frequencies 100,250

    # same grid sharded over 4 worker processes, JSON output
    PYTHONPATH=src python scripts/run_campaign.py \\
        --difficulties easy,medium --seeds 8 --frequencies 100,250 \\
        --workers 4 --output campaign.json

    # solver-less design-space exploration over the hardware catalog,
    # evaluated with the trace-validated analytical cycle model
    PYTHONPATH=src python scripts/run_campaign.py \\
        --episode-kind design_point --fidelity model \\
        --codegen-levels auto --output dse.json

With ``--checkpoint-dir`` the campaign runs on the durable, supervised
path (``docs/robustness.md``): progress is journaled to a
content-addressed run directory, worker death and poisoned episodes are
retried/quarantined instead of aborting, and Ctrl-C exits with status 130
after flushing a final checkpoint plus a ``resume with --resume <dir>``
hint.  ``--resume <dir>`` picks the run back up; completed chunks replay
from the journal, so an interrupted-then-resumed campaign produces
byte-identical rows to an uninterrupted one.

Exit status is non-zero when the campaign produced no aggregate rows, so
CI smoke jobs can assert liveness with a plain shell invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import format_rows                    # noqa: E402
from repro.fleet import (CampaignInterrupted, CampaignSpec,  # noqa: E402
                         RetryPolicy, run_campaign)
from repro.fleet.durable import (DEFAULT_LEASE_SIZE,         # noqa: E402
                                 atomic_write_json)

# Distinct exit status for "interrupted but resumable" (mirrors the shell
# convention for SIGINT: 128 + 2).
EXIT_INTERRUPTED = 130


def _csv(value: str):
    return [item for item in value.split(",") if item]


def _float_csv(value: str):
    return [float(item) for item in _csv(value)]


def _int_csv(value: str):
    return [int(item) for item in _csv(value)]


def _opt_int_csv(value: str):
    return [None if item.lower() in ("none", "default") else int(item)
            for item in _csv(value)]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Run a fleet campaign of HIL episodes.")
    parser.add_argument("--name", default="cli-campaign")
    parser.add_argument("--difficulties", type=_csv, default=["easy"],
                        help="comma-separated: easy,medium,hard")
    parser.add_argument("--seeds", type=int, default=4,
                        help="number of scenario seeds per cell (0..N-1)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first scenario seed")
    parser.add_argument("--implementations", type=_csv, default=["vector"],
                        help="comma-separated: scalar,vector,ideal,...")
    parser.add_argument("--frequencies", type=_float_csv, default=[100.0],
                        help="comma-separated clock frequencies in MHz")
    parser.add_argument("--variants", type=_csv, default=["CrazyFlie"],
                        help="comma-separated drone variants")
    parser.add_argument("--control-rates", type=_float_csv, default=[100.0],
                        help="comma-separated control rates in Hz")
    parser.add_argument("--max-iterations", type=_int_csv, default=[10],
                        help="comma-separated ADMM iteration caps")
    parser.add_argument("--episode-kind",
                        choices=["waypoint", "recovery", "design_point"],
                        default="waypoint",
                        help="waypoint scenarios, disturbance recovery, or "
                             "solver-less design-space exploration")
    parser.add_argument("--disturbance-categories", type=_csv,
                        default=["force", "torque", "combined"],
                        help="recovery only; comma-separated: force,torque,combined")
    parser.add_argument("--disturbance-kinds", type=_csv,
                        default=["step", "impulse"],
                        help="recovery only; comma-separated: step,impulse")
    parser.add_argument("--disturbance-scales", type=_float_csv, default=[1.0],
                        help="recovery only; magnitude-ladder multipliers")
    parser.add_argument("--disturbance-starts", type=_float_csv, default=[0.5],
                        help="recovery only; disturbance start times in seconds")
    parser.add_argument("--programs", type=_csv, default=["iteration"],
                        help="design_point only; registered program variants")
    parser.add_argument("--design-points", type=_csv, default=[],
                        help="design_point only; comma-separated catalog "
                             "names (empty = the whole catalog)")
    parser.add_argument("--codegen-levels", type=_csv, default=["auto"],
                        help="design_point only; optimization levels "
                             "('auto' = the figure-10 level per category)")
    parser.add_argument("--fidelity", type=_csv, default=["trace"],
                        dest="fidelities", metavar="FIDELITY",
                        help="design_point only; comma-separated: trace,model")
    parser.add_argument("--sync-granularities", type=_opt_int_csv,
                        default=[None],
                        help="design_point only; Gemmini ops-per-sync values "
                             "('none' = the level default)")
    parser.add_argument("--lmuls", type=_int_csv, default=[1],
                        help="design_point only; vector register-grouping "
                             "factors")
    parser.add_argument("--solve-iterations", type=int, default=10,
                        help="design_point only; ADMM iterations per solve "
                             "for the cycles-per-solve metric")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = in-process)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="cap on batched solver width per group")
    parser.add_argument("--no-batching", action="store_true",
                        help="force the scalar (bit-for-bit reference) path")
    parser.add_argument("--output", default=None,
                        help="write campaign JSON (spec, rows, stats) here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the table on stdout")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="journal progress under this directory and run "
                             "supervised workers (retry/quarantine); "
                             "interrupted runs can be resumed")
    parser.add_argument("--resume", default=None, metavar="RUN_DIR",
                        help="resume a checkpointed run directory (as "
                             "printed on interrupt); implies the same "
                             "campaign flags as the original invocation")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="attempts per episode chunk before bisection/"
                             "quarantine (checkpointed runs only)")
    parser.add_argument("--episode-timeout", type=float, default=None,
                        help="per-episode timeout in seconds; a chunk gets "
                             "timeout x episodes (checkpointed runs only)")
    parser.add_argument("--lease-size", type=int, default=DEFAULT_LEASE_SIZE,
                        help="episodes per supervised chunk (the atomic "
                             "unit of checkpointing)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    spec = CampaignSpec(
        name=args.name,
        difficulties=tuple(args.difficulties),
        seeds=tuple(range(args.base_seed, args.base_seed + args.seeds)),
        implementations=tuple(args.implementations),
        frequencies_mhz=tuple(args.frequencies),
        variants=tuple(args.variants),
        control_rates_hz=tuple(args.control_rates),
        max_admm_iterations=tuple(args.max_iterations),
        episode_kind=args.episode_kind,
        disturbance_categories=tuple(args.disturbance_categories),
        disturbance_kinds=tuple(args.disturbance_kinds),
        disturbance_scales=tuple(args.disturbance_scales),
        disturbance_start_times=tuple(args.disturbance_starts),
        programs=tuple(args.programs),
        design_points=tuple(args.design_points),
        codegen_levels=tuple(args.codegen_levels),
        fidelities=tuple(args.fidelities),
        sync_granularities=tuple(args.sync_granularities),
        lmuls=tuple(args.lmuls),
        solve_iterations=args.solve_iterations,
    )
    if not args.quiet:
        print(spec.describe())
    checkpoint_dir = args.resume or args.checkpoint_dir
    retry_policy = None
    if checkpoint_dir is not None:
        retry_policy = RetryPolicy(max_attempts=args.max_retries,
                                   episode_timeout=args.episode_timeout)
    start = time.perf_counter()
    try:
        outcome = run_campaign(spec, workers=args.workers,
                               batching=not args.no_batching,
                               max_batch=args.max_batch,
                               checkpoint_dir=checkpoint_dir,
                               retry_policy=retry_policy,
                               lease_size=args.lease_size)
    except CampaignInterrupted as interrupt:
        # Progress is journaled; flush a final checkpoint of the partial
        # per-cell rows and tell the user how to pick the run back up.
        partial_path = os.path.join(interrupt.run_dir, "partial.json")
        atomic_write_json(partial_path, {
            "campaign": spec.to_dict(),
            "completed_episodes": interrupt.completed,
            "total_episodes": interrupt.total,
            "rows": interrupt.partial_rows,
        })
        print("\ninterrupted at {}/{} episodes; partial rows in {}".format(
            interrupt.completed, interrupt.total, partial_path),
            file=sys.stderr)
        print("resume with --resume {}".format(interrupt.run_dir),
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        # No checkpointing armed: nothing durable to flush, but still exit
        # cleanly instead of dumping a traceback.
        print("\ninterrupted (no --checkpoint-dir: progress not saved)",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    elapsed = time.perf_counter() - start
    rows = outcome.rows()

    if not args.quiet:
        print(format_rows(rows))
        summary = outcome.overall()
        if summary.get("design_episodes"):
            rate = "{} design points".format(summary["design_episodes"])
        elif summary.get("recovery_episodes"):
            rate = "recovery rate {:.1%}".format(summary["recovery_rate"])
        else:
            rate = "success rate {:.1%}".format(summary["success_rate"])
        print("\n{} episodes in {:.2f}s ({:.1f} episodes/s) | "
              "{} | {} dispatches, mean batch width {:.1f}"
              .format(summary["episodes"], elapsed,
                      summary["episodes"] / elapsed if elapsed else 0.0,
                      rate, summary["dispatches"],
                      summary["mean_batch_width"]))
    if args.output:
        payload = {
            "campaign": spec.to_dict(),
            "elapsed_s": elapsed,
            "rows": rows,
            "overall": outcome.overall(),
        }
        if outcome.run_dir is not None:
            payload["run_dir"] = outcome.run_dir
            payload["supervisor"] = outcome.report.as_row()
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        if not args.quiet:
            print("wrote {}".format(args.output))
    return 0 if rows else 1


if __name__ == "__main__":
    sys.exit(main())
