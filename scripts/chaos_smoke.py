#!/usr/bin/env python
"""CI chaos smoke: SIGKILL a campaign mid-run, resume, diff against clean.

One self-contained end-to-end check of the durability layer
(``docs/robustness.md``), small enough to run on every push:

1. run a sharded campaign to completion — the uninterrupted reference;
2. run the same campaign in a subprocess with a worker-SIGKILL fault
   armed (``REPRO_CHAOS``), and SIGKILL the *whole subprocess* once the
   journal shows real partial progress;
3. resume from the checkpoint directory;
4. diff the aggregate JSON (rows and per-episode results) byte-for-byte
   against the reference.

Exit status 0 means crash == no-crash held; anything else fails the job.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fleet import CampaignSpec, run_campaign          # noqa: E402
from repro.fleet.durable import journal_path, result_to_dict  # noqa: E402

_DRIVER = """\
import json, sys
sys.path.insert(0, sys.argv[3])
from repro.fleet import CampaignSpec, run_campaign
spec = CampaignSpec.from_dict(json.loads(sys.argv[1]))
run_campaign(spec, workers={workers}, checkpoint_dir=sys.argv[2],
             lease_size={lease})
print("COMPLETED")
"""


def _find_journal(checkpoint: str):
    if not os.path.isdir(checkpoint):
        return None
    for entry in os.listdir(checkpoint):
        path = journal_path(os.path.join(checkpoint, entry))
        if os.path.exists(path):
            return path
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL a campaign mid-run, resume, diff vs clean.")
    parser.add_argument("--seeds", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--lease-size", type=int, default=4)
    parser.add_argument("--kill-episode", type=int, default=11,
                        help="episode whose build SIGKILLs its worker")
    parser.add_argument("--min-commits", type=int, default=2,
                        help="journal commits to wait for before killing "
                             "the campaign process")
    parser.add_argument("--output", default=None,
                        help="write a JSON summary here")
    args = parser.parse_args(argv)

    spec = CampaignSpec(name="chaos-smoke", difficulties=("easy",),
                        seeds=range(args.seeds),
                        frequencies_mhz=(100.0, 250.0))
    workdir = tempfile.mkdtemp(prefix="chaos-smoke-")
    try:
        print("== reference run ({} episodes) ==".format(args.seeds * 2))
        reference = run_campaign(spec, workers=args.workers,
                                 checkpoint_dir=os.path.join(workdir, "ref"),
                                 lease_size=args.lease_size)
        reference_rows = json.dumps(reference.rows(), sort_keys=True)
        reference_results = [result_to_dict(r) for r in reference.results]

        print("== chaos run: worker SIGKILL armed, then campaign SIGKILL ==")
        checkpoint = os.path.join(workdir, "chaos")
        driver = os.path.join(workdir, "driver.py")
        with open(driver, "w") as handle:
            handle.write(_DRIVER.format(workers=args.workers,
                                        lease=args.lease_size))
        env = dict(os.environ)
        env["REPRO_CHAOS"] = json.dumps({
            "episode": args.kill_episode, "mode": "kill", "max_triggers": 1,
            "state": os.path.join(workdir, "chaos.state")})
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "src")
        process = subprocess.Popen(
            [sys.executable, driver, json.dumps(spec.to_dict()),
             checkpoint, src],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        deadline = time.monotonic() + 300
        journal = None
        while time.monotonic() < deadline and process.poll() is None:
            journal = journal or _find_journal(checkpoint)
            if journal is not None and os.path.exists(journal):
                with open(journal, "rb") as handle:
                    if handle.read().count(b'"t":"commit"') \
                            >= args.min_commits:
                        process.kill()
                        break
            time.sleep(0.02)
        process.wait(timeout=300)
        stdout = process.stdout.read()
        process.stdout.close()
        process.stderr.close()
        interrupted = "COMPLETED" not in stdout
        print("campaign process {}".format(
            "SIGKILL'd mid-run" if interrupted else
            "finished before the kill landed (degrades to pure replay)"))

        print("== resume from {} ==".format(checkpoint))
        resumed = run_campaign(spec, workers=args.workers,
                               checkpoint_dir=checkpoint,
                               lease_size=args.lease_size)
        resumed_rows = json.dumps(resumed.rows(), sort_keys=True)
        resumed_results = [result_to_dict(r) for r in resumed.results]
        print("resume report:", resumed.report.as_row())

        rows_equal = resumed_rows == reference_rows
        results_equal = resumed_results == reference_results
        summary = {
            "episodes": len(reference.results),
            "interrupted": interrupted,
            "replayed_chunks": resumed.report.replayed_chunks,
            "fresh_chunks": resumed.report.fresh_chunks,
            "rows_byte_identical": rows_equal,
            "results_identical": results_equal,
        }
        if args.output:
            with open(args.output, "w") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
        print(json.dumps(summary, indent=2, sort_keys=True))
        if rows_equal and results_equal:
            print("chaos smoke ok: crash == no-crash")
            return 0
        print("chaos smoke FAILED: resumed output diverged from reference",
              file=sys.stderr)
        return 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
