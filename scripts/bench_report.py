#!/usr/bin/env python
"""Run the kernel hot-path microbenchmarks and emit BENCH_kernels.json.

Usage::

    PYTHONPATH=src python scripts/bench_report.py            # full run
    PYTHONPATH=src python scripts/bench_report.py --smoke    # CI smoke mode
    PYTHONPATH=src python scripts/bench_report.py --no-campaign

The report lands in ``--output-dir`` (default: current directory, or
``$BENCH_DIR``) in the shared BENCH_*.json schema — see ``docs/perf.md``
for how to read it.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import (  # noqa: E402
    run_compiled_backend_bench,
    run_dse_bench,
    run_kernel_hotpath_bench,
    write_bench_report,
)
from repro.tinympc import kernel_backend_info  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fewer rounds and a tiny campaign grid (CI)")
    parser.add_argument("--no-campaign", action="store_true",
                        help="skip the fleet-campaign comparison")
    parser.add_argument("--backend", default="auto",
                        help="compiled backend to measure (auto/numba/c/"
                             "numpy; numpy skips the compiled rows)")
    parser.add_argument("--dse", action="store_true",
                        help="also run the design-space exploration "
                             "throughput benchmark (BENCH_dse.json)")
    parser.add_argument("--output-dir", type=Path, default=None,
                        help="directory for BENCH_kernels.json")
    args = parser.parse_args()

    metrics, rows = run_kernel_hotpath_bench(smoke=args.smoke,
                                             campaign=not args.no_campaign)
    compiled_metrics, compiled_rows = run_compiled_backend_bench(
        args.backend, smoke=args.smoke)
    metrics.update(compiled_metrics)
    rows.extend(compiled_rows)
    path = write_bench_report("kernels", metrics, rows, smoke=args.smoke,
                              directory=args.output_dir)

    print("== per-kernel timings (best-of, microseconds) ==")
    header = "{:22s} {:>8s} {:>8s} {:>10s} {:>10s} {:>8s}".format(
        "kernel", "layout", "impl", "fast_us", "naive_us", "speedup")
    print(header)
    for row in rows:
        print("{:22s} {:>8s} {:>8s} {:>10.2f} {:>10.2f} {:>7.2f}x".format(
            row["kernel"], row["layout"], row.get("impl", "numpy"),
            row["fast_us"], row["naive_us"], row["speedup"]))
    print("\n== active kernel backend ==")
    for key, value in kernel_backend_info().items():
        print("{:40s} {}".format(key, value))
    print("\n== headline metrics ==")
    for key in sorted(metrics):
        print("{:40s} {}".format(key, metrics[key]))
    print("\nwrote {}".format(path))

    if args.dse:
        dse_metrics, dse_rows = run_dse_bench(smoke=args.smoke)
        dse_path = write_bench_report("dse", dse_metrics, dse_rows,
                                      smoke=args.smoke,
                                      directory=args.output_dir)
        print("\n== DSE throughput (model campaign vs serial compiles) ==")
        for row in dse_rows:
            print("{:10s} {:>4d} specs  serial {:>7.2f}s  model {:>7.3f}s"
                  "  {:>6.1f}x".format(row["category"], row["specs"],
                                       row["serial_compile_s"],
                                       row["model_fleet_s"], row["speedup"]))
        for key in sorted(dse_metrics):
            print("{:40s} {}".format(key, dse_metrics[key]))
        print("\nwrote {}".format(dse_path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
