#!/usr/bin/env python
"""Hunt the recovery boundary with the property-based campaign fuzzer.

Samples seeded episode specs along each fuzz axis (wrench steps/impulses,
Dryden and discrete gusts, sensor noise/latency/dropout, payload mass
mismatch), bisects the recovered/failed boundary per axis at fleet
throughput, shrinks each failure to a minimal spec, and writes JSON
regression fixtures plus a deterministic report.  Examples::

    # full axis catalog, 2 nuisance draws each, fixtures + report
    PYTHONPATH=src python scripts/fuzz_campaign.py \\
        --seed 0 --fixtures-dir fuzz-fixtures --output fuzz-report.json

    # CI smoke: two axes, single draw, then re-replay the minted fixtures
    PYTHONPATH=src python scripts/fuzz_campaign.py \\
        --axes force-step,mass-mismatch --draws 1 --rungs 4 --bisect 3 \\
        --fixtures-dir fuzz-fixtures --replay-check

Exit status: 1 when the fuzzer flew no episodes, 2 when ``--replay-check``
found a fixture that does not reproduce (the determinism alarm CI cares
about), else 0.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fuzz import (                                     # noqa: E402
    FuzzConfig,
    axis_names,
    load_fixtures,
    replay_fixture,
    run_fuzz_campaign,
)


def _csv(value: str):
    return [item for item in value.split(",") if item]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Property-based recovery-boundary fuzzer.")
    parser.add_argument("--seed", type=int, default=0,
                        help="fuzz campaign seed (drives nuisance draws)")
    parser.add_argument("--axes", type=_csv, default=None,
                        help="comma-separated axis names (default: all: {})"
                        .format(",".join(axis_names())))
    parser.add_argument("--draws", type=int, default=2,
                        help="nuisance draws per axis")
    parser.add_argument("--rungs", type=int, default=5,
                        help="coarse magnitude-ladder rungs per hunt")
    parser.add_argument("--bisect", type=int, default=4,
                        help="bisection rounds after bracketing")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the batched hunt")
    parser.add_argument("--fixtures-dir", default=None,
                        help="write shrunk failure fixtures here")
    parser.add_argument("--output", default=None,
                        help="write the fuzz report JSON here")
    parser.add_argument("--replay-check", action="store_true",
                        help="after fuzzing, replay every fixture in "
                             "--fixtures-dir and fail on divergence")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = FuzzConfig(seed=args.seed,
                        axes=tuple(args.axes) if args.axes else (),
                        draws_per_axis=args.draws, rungs=args.rungs,
                        bisect_rounds=args.bisect, workers=args.workers)
    start = time.perf_counter()
    report = run_fuzz_campaign(config, fixture_dir=args.fixtures_dir)
    elapsed = time.perf_counter() - start

    if not args.quiet:
        for boundary in report.boundaries:
            bracket = ("boundary in ({:.4g}, {:.4g}]".format(
                boundary.lo_pass, boundary.hi_fail)
                if boundary.lo_pass is not None
                and boundary.hi_fail is not None
                else "fails from the bottom of the range"
                if boundary.lo_pass is None and boundary.hi_fail is not None
                else "recovered across the whole range")
            print("{:>16} draw {}: {} ({} probes{})".format(
                boundary.axis, boundary.draw, bracket,
                len(boundary.evaluations),
                ", fixture " + boundary.fixture if boundary.fixture else ""))
        print("\n{} episodes in {:.2f}s ({:.1f} episodes/s), {} fixtures"
              .format(report.episodes_flown, elapsed,
                      report.episodes_flown / elapsed if elapsed else 0.0,
                      len(report.fixtures)))

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        if not args.quiet:
            print("wrote {}".format(args.output))

    if args.replay_check:
        if not args.fixtures_dir:
            print("--replay-check needs --fixtures-dir", file=sys.stderr)
            return 2
        diverged = False
        for name, payload in load_fixtures(args.fixtures_dir):
            _, divergences = replay_fixture(payload)
            status = "ok" if not divergences else "DIVERGED"
            if not args.quiet or divergences:
                print("replay {}: {}".format(name, status))
            for message in divergences:
                print("  " + message, file=sys.stderr)
                diverged = True
        if diverged:
            return 2

    return 0 if report.episodes_flown else 1


if __name__ == "__main__":
    sys.exit(main())
