#!/usr/bin/env python
"""Validate the analytical cycle model against the full-stream trace.

Sweeps every catalog design point at every valid optimization level,
compares :func:`repro.arch.cycle_model.model_report` against the compiled
instruction-stream trace, prints the comparison table, and exits non-zero
if any pair's relative error exceeds the pinned tolerance
(:data:`repro.arch.cycle_model.PINNED_TOLERANCE`).  CI runs this on every
push so the model-fidelity campaign axis can never silently drift from the
trace it stands in for.

Usage::

    PYTHONPATH=src python scripts/validate_cycle_model.py
    PYTHONPATH=src python scripts/validate_cycle_model.py --levels default
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.arch.cycle_model import (  # noqa: E402
    PINNED_TOLERANCE,
    validate_catalog,
)
from repro.experiments import format_rows  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", choices=["all", "default"], default="all",
                        help="'all' sweeps every valid level per point; "
                             "'default' only the Fig. 10 level per category")
    parser.add_argument("--quiet", action="store_true",
                        help="only print failures and the summary line")
    args = parser.parse_args(argv)

    validations = validate_catalog(levels=args.levels)
    rows = [validation.as_row() for validation in validations]
    if not args.quiet:
        print(format_rows(rows))
    failures = [row for row in rows if not row["within_tolerance"]]
    exact = sum(1 for row in rows if row["exact"])
    worst = max(row["relative_error"] for row in rows)
    print("\n{} (point, level) pairs | {} bit-exact | worst relative error "
          "{:.2%} | tolerance {:.0%}".format(len(rows), exact, worst,
                                             PINNED_TOLERANCE))
    if failures:
        print("\nFAIL: {} pairs beyond tolerance:".format(len(failures)),
              file=sys.stderr)
        print(format_rows(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
